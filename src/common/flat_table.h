/**
 * @file
 * Build-once open-addressing lookup table for the per-flit hot path
 * (ROADMAP: "Close the remaining per-flit cost").
 *
 * The routing and VC-allocation tables are immutable at run time, but
 * were stored as `std::unordered_map<Key, std::vector<Result>>`: every
 * per-flit lookup paid a bucket-pointer chase into a heap-scattered
 * node, then a second indirection into the option vector — ~25% of a
 * low-rate 16x16 run (BENCHMARKS.md). FlatTable is the frozen form the
 * tables compile into after construction:
 *
 *  - linear-probe open addressing over a power-of-two slot array at
 *    <= 50% load, so a lookup is one hash, one masked index, and a
 *    short contiguous scan (no bucket chains, no per-node allocation);
 *  - all option lists live back-to-back in one packed value slab, and
 *    every entry is a {pointer, count, total weight} view into it;
 *  - storage is carved from the owning component's placement-group
 *    Arena (falling back to a private arena when none is supplied), so
 *    a router's table probes stay in its own cache/NUMA lines.
 *
 * The table is immutable once built: there is no insert, erase, or
 * tombstone — mutation belongs to the map form the owner keeps during
 * construction and drops at freeze time.
 *
 * The precomputed per-entry total weight uses the same left-to-right
 * accumulation as Rng::pick_weighted's std::accumulate, so a weighted
 * pick over a frozen entry draws bit-for-bit the same result as the
 * map-backed path did (the determinism contract of the freeze).
 */
#ifndef HORNET_COMMON_FLAT_TABLE_H
#define HORNET_COMMON_FLAT_TABLE_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/log.h"

namespace hornet::common {

/**
 * One frozen table entry: a read-only view of a packed option list.
 * Mimics the `const std::vector<V> *` the map-backed tables used to
 * return (size/empty/front/operator[]/range-for), so call sites keep
 * their idioms across the freeze.
 */
template <typename V>
struct FlatEntry
{
    /** First option, inside the table's packed value slab. */
    const V *data = nullptr;
    /** Number of options in this entry. */
    std::uint32_t count = 0;
    /**
     * Sum of the options' `weight` fields, accumulated left to right
     * exactly like Rng::pick_weighted does (0.0 for option types
     * without a weight field). Precomputed so a weighted pick skips
     * the per-lookup accumulation without changing its arithmetic.
     */
    double total_weight = 0.0;

    /** Iterator to the first option (range-for support). */
    const V *begin() const { return data; }
    /** Iterator past the last option (range-for support). */
    const V *end() const { return data + count; }
    /** Number of options. */
    std::size_t size() const { return count; }
    /** True when the entry holds no options. */
    bool empty() const { return count == 0; }
    /** First option (entry must be non-empty). */
    const V &front() const { return data[0]; }
    /** Option @p i (unchecked). */
    const V &operator[](std::size_t i) const { return data[i]; }
};

/**
 * Recompute a FlatEntry's total weight from its options, left to
 * right — the shared helper both the frozen build and the map-backed
 * building-phase lookups use, so the two paths are bitwise identical.
 * Option types without a `weight` member total 0.0.
 */
template <typename V>
inline double
flat_total_weight(const V *data, std::size_t n)
{
    double total = 0.0;
    if constexpr (requires(const V &v) { v.weight; }) {
        for (std::size_t i = 0; i < n; ++i)
            total = total + data[i].weight;
    } else {
        (void)data;
        (void)n;
    }
    return total;
}

/**
 * The frozen open-addressing table (see the file comment). K and V
 * must be trivially destructible and trivially copyable — they are
 * carved from an Arena and abandoned, never destroyed. H is the hash
 * functor used for slot placement.
 */
template <typename K, typename V, typename H = std::hash<K>>
class FlatTable
{
    static_assert(std::is_trivially_destructible_v<K> &&
                      std::is_trivially_copyable_v<K>,
                  "FlatTable keys live in an arena slab");
    static_assert(std::is_trivially_destructible_v<V> &&
                      std::is_trivially_copyable_v<V>,
                  "FlatTable values live in an arena slab");

  public:
    /** The entry view type lookups return. */
    using Entry = FlatEntry<V>;

    /** Slot marker: no entry hashed here. */
    static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

    /** True once build()/begin_build() has run. */
    bool built() const { return slots_ != nullptr; }

    /** Number of keys in the table. */
    std::size_t size() const { return num_entries_; }

    /** Slot-array capacity (power of two; 0 before building). */
    std::size_t capacity() const { return slots_ == nullptr ? 0 : mask_ + 1; }

    /** Longest probe sequence any present key needs (1 = direct hit). */
    std::uint32_t max_probe() const { return max_probe_; }

    /**
     * Start building: size the slot array (power of two, <= 50% load),
     * the entry array for @p n_keys entries, and the value slab for
     * @p n_values options, carving all three from @p arena (a private
     * arena is created when @p arena is null). Must be followed by
     * exactly @p n_keys add_entry() calls. Rebuilding an already-built
     * table is a bug (panics).
     */
    void
    begin_build(std::size_t n_keys, std::size_t n_values,
                Arena *arena = nullptr)
    {
        if (built())
            panic("FlatTable: already built");
        if (n_keys > kEmptySlot)
            panic("FlatTable: too many keys");
        if (arena == nullptr) {
            const std::size_t need =
                sizeof(Slot) * 4 * (n_keys + 2) + sizeof(Entry) * (n_keys + 1) +
                sizeof(V) * (n_values + 1) + 256;
            own_arena_ = std::make_unique<Arena>(need);
            arena = own_arena_.get();
        }
        std::size_t cap = std::bit_ceil(std::max<std::size_t>(8, n_keys * 2));
        mask_ = cap - 1;
        slots_ = arena->template make_array<Slot>(cap);
        entries_ = arena->template make_array<Entry>(std::max<std::size_t>(
            1, n_keys));
        values_ = arena->template make_array<V>(std::max<std::size_t>(
            1, n_values));
        values_left_ = n_values;
        keys_left_ = n_keys;
    }

    /**
     * Add one entry during building: copy @p n options from @p vals
     * into the packed slab, precompute their total weight, and place
     * @p key in the slot array by linear probing. Duplicate keys and
     * overflowing the counts declared to begin_build() are bugs
     * (panics).
     */
    void
    add_entry(const K &key, const V *vals, std::size_t n)
    {
        if (slots_ == nullptr)
            panic("FlatTable: add_entry before begin_build");
        if (keys_left_ == 0 || n > values_left_)
            panic("FlatTable: add_entry overflows the declared build size");
        V *dst = values_ + values_cursor_;
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = vals[i];
        Entry &e = entries_[num_entries_];
        e.data = dst;
        e.count = static_cast<std::uint32_t>(n);
        e.total_weight = flat_total_weight(dst, n);
        values_cursor_ += n;
        values_left_ -= n;

        std::size_t i = H{}(key) & mask_;
        std::uint32_t probes = 1;
        while (slots_[i].entry != kEmptySlot) {
            if (slots_[i].key == key)
                panic("FlatTable: duplicate key");
            i = (i + 1) & mask_;
            ++probes;
        }
        slots_[i].key = key;
        slots_[i].entry = static_cast<std::uint32_t>(num_entries_);
        if (probes > max_probe_)
            max_probe_ = probes;
        ++num_entries_;
        --keys_left_;
    }

    /**
     * One-shot build from the mutable map form the owner kept during
     * construction. Entry order follows the map's iteration order
     * (deterministic for a given insertion sequence), which only
     * affects slab layout, never lookup results.
     */
    void
    build(const std::unordered_map<K, std::vector<V>, H> &src,
          Arena *arena = nullptr)
    {
        std::size_t n_values = 0;
        for (const auto &kv : src)
            n_values += kv.second.size();
        begin_build(src.size(), n_values, arena);
        for (const auto &kv : src)
            add_entry(kv.first, kv.second.data(), kv.second.size());
    }

    /**
     * Single-probe lookup: the entry for @p key, or nullptr when the
     * key is absent. The returned view stays valid for the table's
     * lifetime (the table is immutable once built).
     */
    const Entry *
    lookup(const K &key) const
    {
        if (slots_ == nullptr)
            return nullptr;
        std::size_t i = H{}(key) & mask_;
        for (;;) {
            const Slot &s = slots_[i];
            if (s.entry == kEmptySlot)
                return nullptr;
            if (s.key == key)
                return &entries_[s.entry];
            i = (i + 1) & mask_;
        }
    }

    /** Position of @p e in entry-insertion order (e must come from
     *  this table's lookup()). */
    std::size_t
    entry_index(const Entry *e) const
    {
        return static_cast<std::size_t>(e - entries_);
    }

    /** Apply @p fn(key, entry) to every present key, in slot order. */
    template <typename Fn>
    void
    for_each_key(Fn fn) const
    {
        if (slots_ == nullptr)
            return;
        for (std::size_t i = 0; i <= mask_; ++i)
            if (slots_[i].entry != kEmptySlot)
                fn(slots_[i].key, entries_[slots_[i].entry]);
    }

  private:
    /** One probe slot: a key and the index of its entry. */
    struct Slot
    {
        K key{};
        std::uint32_t entry = kEmptySlot;
    };

    Slot *slots_ = nullptr;    ///< power-of-two probe array
    Entry *entries_ = nullptr; ///< entry views, in insertion order
    V *values_ = nullptr;      ///< packed option slab
    std::size_t mask_ = 0;     ///< capacity - 1
    std::size_t num_entries_ = 0;
    std::size_t values_cursor_ = 0;
    std::size_t values_left_ = 0;
    std::size_t keys_left_ = 0;
    std::uint32_t max_probe_ = 0;
    /** Fallback storage when no placement arena was supplied. */
    std::unique_ptr<Arena> own_arena_;
};

} // namespace hornet::common

#endif // HORNET_COMMON_FLAT_TABLE_H
