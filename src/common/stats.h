/**
 * @file
 * Statistics primitives.
 *
 * Per-tile statistics are kept thread-private during simulation (paper
 * II-C: "accumulating statistics separately in each thread") and merged
 * only at reporting time, so collection never introduces inter-thread
 * communication.
 */
#ifndef HORNET_COMMON_STATS_H
#define HORNET_COMMON_STATS_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace hornet {

/** Mean/min/max/count accumulator for scalar samples. */
class RunningStat
{
  public:
    /** Record one sample. */
    void
    add(double x)
    {
        ++count_;
        sum_ += x;
        sum_sq_ += x * x;
        if (count_ == 1 || x < min_)
            min_ = x;
        if (count_ == 1 || x > max_)
            max_ = x;
    }

    /** Accumulate all of @p o's samples into this accumulator. */
    void
    merge(const RunningStat &o)
    {
        if (o.count_ == 0)
            return;
        if (count_ == 0) {
            *this = o;
            return;
        }
        count_ += o.count_;
        sum_ += o.sum_;
        sum_sq_ += o.sum_sq_;
        if (o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }
    /** Sum of all samples. */
    double sum() const { return sum_; }
    /** Mean sample (0 when empty). */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    /** Smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }
    /** Largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        if (count_ == 0)
            return 0.0;
        double m = mean();
        double v = sum_sq_ / count_ - m * m;
        return v > 0.0 ? v : 0.0;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram with overflow bucket. */
class Histogram
{
  public:
    /** Buckets of width @p bucket_width starting at 0; values beyond
     *  num_buckets * bucket_width land in the overflow bucket. */
    explicit Histogram(std::size_t num_buckets = 64,
                       double bucket_width = 8.0)
        : width_(bucket_width), buckets_(num_buckets, 0), overflow_(0)
    {}

    /** Record one sample into its bucket (or the overflow bucket). */
    void
    add(double x)
    {
        auto idx = static_cast<std::size_t>(x / width_);
        if (idx < buckets_.size())
            ++buckets_[idx];
        else
            ++overflow_;
    }

    /** Accumulate @p o into this histogram. Counts in @p o's buckets
     *  beyond this histogram's range fold into the overflow bucket
     *  (by bucket index), so total() is always conserved even when
     *  the two histograms were built with different bucket counts. */
    void
    merge(const Histogram &o)
    {
        const std::size_t both = std::min(buckets_.size(), o.buckets_.size());
        for (std::size_t i = 0; i < both; ++i)
            buckets_[i] += o.buckets_[i];
        for (std::size_t i = both; i < o.buckets_.size(); ++i)
            overflow_ += o.buckets_[i];
        overflow_ += o.overflow_;
    }

    /** Total sample count across all buckets plus overflow. */
    std::uint64_t
    total() const
    {
        std::uint64_t t = overflow_;
        for (auto b : buckets_)
            t += b;
        return t;
    }

    /** Approximate p-th percentile (p in [0,1]) from bucket midpoints. */
    double percentile(double p) const;

    /** Per-bucket sample counts. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    /** Samples beyond the last bucket. */
    std::uint64_t overflow() const { return overflow_; }
    /** Width of each bucket. */
    double bucket_width() const { return width_; }

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_;
};

/**
 * Per-tile network statistics.
 *
 * Event counters double as the activity inputs of the power model
 * (paper II-B: buffer reads/writes and crossbar transits are passed to
 * ORION). Latency samples are taken from the counters *carried inside
 * each flit* at delivery, never from cross-tile clock comparison.
 */
struct TileStats
{
    // Traffic.
    std::uint64_t flits_injected = 0;    ///< Flits entering at this tile.
    std::uint64_t flits_delivered = 0;   ///< Flits ejected at this tile.
    std::uint64_t packets_injected = 0;  ///< Packets entering here.
    std::uint64_t packets_delivered = 0; ///< Packets ejected here.

    // Router activity (power-model inputs).
    std::uint64_t buffer_writes = 0; ///< VC-buffer write events.
    std::uint64_t buffer_reads = 0;  ///< VC-buffer read events.
    std::uint64_t xbar_transits = 0; ///< Crossbar traversals.
    std::uint64_t link_transits = 0; ///< Link traversals.
    std::uint64_t va_grants = 0;     ///< VC-allocation grants.
    std::uint64_t sa_grants = 0;     ///< Switch-allocation grants.

    // Stalls (diagnostics).
    std::uint64_t va_stalls = 0;     ///< VC-allocation stalls.
    std::uint64_t sa_stalls = 0;     ///< Switch-allocation stalls.
    std::uint64_t credit_stalls = 0; ///< Pushes blocked on credits.

    // Delivered-traffic latency, measured in cycles carried by the flit.
    RunningStat flit_latency;   ///< Per-flit delivery latency.
    RunningStat packet_latency; ///< Per-packet delivery latency.
    /** Packet-latency distribution (fixed 8-cycle buckets). */
    Histogram packet_latency_hist{128, 8.0};

    /** Accumulate @p o's counters and latency samples into this. */
    void merge(const TileStats &o);
};

/** Per-flow delivery statistics (for fairness / starvation analysis). */
struct FlowStats
{
    std::uint64_t packets_delivered = 0; ///< Packets delivered.
    std::uint64_t flits_delivered = 0;   ///< Flits delivered.
    RunningStat packet_latency;          ///< Per-packet latency.
};

/** Whole-system statistics snapshot, merged from tiles at report time. */
struct SystemStats
{
    /** System-wide totals (all tiles merged). */
    TileStats total;
    /** Per-tile statistics, indexed by node id. */
    std::vector<TileStats> per_tile;
    /** Per-flow delivery statistics, ordered by flow id. */
    std::map<FlowId, FlowStats> per_flow;

    // Engine scheduling counters of the run that produced this
    // snapshot (filled by sim::System::collect_stats; zero for
    // snapshots not taken from an engine run). They make fast-forward
    // and event-driven scheduling effectiveness observable per run.

    /** Whole-system clock cycles jumped over by fast-forward. */
    std::uint64_t ff_skipped_cycles = 0;
    /** Tile-cycles actually ticked by the scheduler. */
    std::uint64_t tile_cycles_run = 0;
    /** Tile-cycles not ticked: fast-forward jumps plus event-driven
     *  per-tile sleep. */
    std::uint64_t tile_cycles_skipped = 0;
    /** Component-cycles actually ticked (fine-grain scheduling ticks
     *  only awake components inside awake tiles). */
    std::uint64_t comp_cycles_run = 0;
    /** Component-cycles not ticked out of the component x cycle
     *  grid. */
    std::uint64_t comp_cycles_skipped = 0;

    // Memory-footprint counters (filled by sim::System::collect_stats;
    // zero for snapshots not taken from a System). They cover the
    // construction arenas — the slabs holding tiles, routers, links
    // and VC buffers — not heap-side state such as routing tables or
    // frontends: the footprint counterpart to the scheduling counters
    // above.

    /** Arena footprint of one placement group (one slab set). */
    struct ArenaGroupStats
    {
        /** Payload bytes of all chunks the group's arena reserved. */
        std::uint64_t bytes_reserved = 0;
        /** Bytes actually carved out of those chunks. */
        std::uint64_t bytes_used = 0;
    };

    /** Per-placement-group arena footprint (shard-level view when the
     *  run's thread count matches the group count). */
    std::vector<ArenaGroupStats> arena_per_group;
    /** Total payload bytes reserved across all arenas. */
    std::uint64_t arena_bytes_reserved = 0;
    /** Total bytes carved across all arenas. */
    std::uint64_t arena_bytes_used = 0;
    /** arena_bytes_used / number of tiles (0 when unknown). */
    double arena_bytes_per_tile = 0.0;

    /** Mean in-network latency of delivered packets, cycles. */
    double
    avg_packet_latency() const
    {
        return total.packet_latency.mean();
    }

    /** Mean in-network latency of delivered flits, cycles. */
    double
    avg_flit_latency() const
    {
        return total.flit_latency.mean();
    }

    /** Render a short human-readable summary. */
    std::string summary() const;
};

/**
 * Order-independent 64-bit fingerprint of a run's simulation results:
 * an FNV-1a fold over every tile's traffic/activity/stall counters and
 * latency accumulators (doubles bit-cast, so "equal" means bitwise
 * equal, not approximately equal) and the per-flow delivery map. The
 * scheduling and arena counters are deliberately excluded — they
 * describe how the run was executed, not what it computed — so two
 * runs of the same workload under different schedulers, thread counts
 * or memory layouts must produce the same fingerprint whenever the
 * engine's determinism contract says their results are bitwise
 * identical. The sweep engine (sim::JobEngine) uses this as the
 * per-job delivered-traffic digest.
 */
std::uint64_t stats_fingerprint(const SystemStats &s);

} // namespace hornet

#endif // HORNET_COMMON_STATS_H
