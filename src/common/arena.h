/**
 * @file
 * Bump/slab arena allocator for the simulator's construction-time
 * object graph (ROADMAP: "Memory layout for giant meshes").
 *
 * A 64x64 mesh builds hundreds of thousands of small objects — tiles,
 * routers, VC buffers and their rings — and the default allocator
 * scatters them across the heap with per-allocation headers and
 * alignment slack. The arena instead carves objects back-to-back out
 * of large cache-line-aligned chunks: one arena per placement group
 * (== engine shard when thread and group counts match), so a shard's
 * whole working set is contiguous and lands on the NUMA node of the
 * thread that constructed it (first touch).
 *
 * Contract:
 *  - NOT thread-safe. One arena is filled by exactly one construction
 *    thread; afterwards the *objects* are used under their own rules
 *    (the arena itself is only read for statistics).
 *  - Objects never outlive the arena. allocate()/make() hand out raw
 *    pointers that stay valid until reset() or destruction; there is
 *    no per-object free (bump allocation).
 *  - make() registers the destructor of non-trivially-destructible
 *    objects and runs the registered list in reverse construction
 *    order at reset() and destruction, so owners placed before their
 *    parts are destroyed after them.
 *  - reset() retains the chunks for reuse, which is what makes
 *    build/run/rebuild sweeps allocation-free after the first lap.
 *
 * Under AddressSanitizer every allocation is followed by a poisoned
 * red zone and reset() re-poisons the retained chunks, so buffer
 * overruns between neighbouring carves and use-after-reset are caught
 * even though the memory all comes from one big block.
 */
#ifndef HORNET_COMMON_ARENA_H
#define HORNET_COMMON_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace hornet::common {

/**
 * Chunked bump allocator with cache-line-aligned chunks, destructor
 * registration, and reuse across reset() (see the file comment for
 * the ownership contract).
 */
class Arena
{
  public:
    /** Default payload size of one chunk (1 MiB). */
    static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 20;

    /** @param chunk_bytes payload size of each slab chunk (>= 1);
     *  oversized single allocations get a dedicated chunk. */
    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);

    /** Runs the registered destructors (reverse order), then frees
     *  every chunk. */
    ~Arena();

    // Objects hold raw pointers into the chunks, so the arena must
    // never move or duplicate them.
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Carve @p bytes with alignment @p align (a power of two) from the
     * current chunk, growing by a new chunk when it does not fit. The
     * memory is uninitialized; it stays valid until reset() or
     * destruction. Zero-byte requests return a unique valid pointer.
     */
    void *allocate(std::size_t bytes, std::size_t align);

    /**
     * Construct a T in place in the arena. Non-trivially-destructible
     * objects are registered and destroyed — in reverse construction
     * order — at reset() or arena destruction; trivial ones are simply
     * abandoned.
     */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        void *p = allocate(sizeof(T), alignof(T));
        T *obj = ::new (p) T(std::forward<Args>(args)...);
        if constexpr (!std::is_trivially_destructible_v<T>)
            dtors_.push_back({obj, [](void *o) {
                                  static_cast<T *>(o)->~T();
                              }});
        return obj;
    }

    /**
     * Carve a value-initialized array of @p n objects of type T.
     * Restricted to trivially destructible element types so the arena
     * never has to track per-element lifetimes (the hot-path carves —
     * flit rings, flow tables — are exactly such types).
     */
    template <typename T>
    T *
    make_array(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "make_array is for trivially destructible types");
        T *p = static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
        for (std::size_t i = 0; i < n; ++i)
            ::new (static_cast<void *>(p + i)) T();
        return p;
    }

    /**
     * Destroy every registered object (reverse construction order) and
     * rewind the allocator, *retaining* the chunks: subsequent
     * allocations reuse them before any new chunk is requested. Under
     * ASan the retained memory is re-poisoned, so stale pointers into
     * the previous generation fault.
     */
    void reset();

    /** Bytes handed out since the last reset, including alignment
     *  padding (and, under ASan, red zones). */
    std::size_t bytes_used() const { return used_; }

    /** Total payload bytes of all chunks ever allocated. */
    std::size_t bytes_reserved() const { return reserved_; }

    /** Number of chunks backing the arena (tests). */
    std::size_t num_chunks() const { return chunks_.size(); }

  private:
    /** One slab: a cache-line-aligned payload of @p size bytes. */
    struct Chunk
    {
        std::byte *base = nullptr;
        std::size_t size = 0;
    };

    /** A registered destructor for one make()-constructed object. */
    struct Dtor
    {
        void *obj;
        void (*fn)(void *);
    };

    /** Make chunk @p idx the active one and rewind its cursor. */
    void activate_chunk(std::size_t idx);

    /** Append (and activate) a fresh chunk of >= @p min_payload. */
    void grow(std::size_t min_payload);

    std::size_t chunk_bytes_;
    std::vector<Chunk> chunks_;
    std::size_t active_ = 0;  ///< chunk currently bumped (when any)
    std::uintptr_t cur_ = 0;  ///< bump cursor into the active chunk
    std::uintptr_t end_ = 0;  ///< end of the active chunk's payload
    std::size_t used_ = 0;
    std::size_t reserved_ = 0;
    std::vector<Dtor> dtors_;
};

} // namespace hornet::common

#endif // HORNET_COMMON_ARENA_H
