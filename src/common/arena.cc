#include "common/arena.h"

#include <algorithm>

#include "common/log.h"
#include "common/ring.h" // kCacheLineSize

#if defined(__SANITIZE_ADDRESS__)
#define HORNET_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HORNET_ARENA_ASAN 1
#endif
#endif

#if defined(HORNET_ARENA_ASAN)
#include <sanitizer/asan_interface.h>
// Red zone appended after every allocation so neighbouring carves
// cannot silently run into each other.
static constexpr std::size_t kRedzoneBytes = 32;
#define HORNET_ARENA_POISON(p, n) ASAN_POISON_MEMORY_REGION((p), (n))
#define HORNET_ARENA_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION((p), (n))
#else
static constexpr std::size_t kRedzoneBytes = 0;
#define HORNET_ARENA_POISON(p, n) ((void)(p), (void)(n))
#define HORNET_ARENA_UNPOISON(p, n) ((void)(p), (void)(n))
#endif

namespace hornet::common {

namespace {

constexpr std::size_t kChunkAlign = 64; // >= kCacheLineSize

constexpr bool
is_pow2(std::size_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

Arena::Arena(std::size_t chunk_bytes)
    : chunk_bytes_(chunk_bytes ? chunk_bytes : 1)
{
    static_assert(kChunkAlign >= kCacheLineSize,
                  "chunks must be cache-line aligned");
}

Arena::~Arena()
{
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it)
        it->fn(it->obj);
    for (const Chunk &c : chunks_) {
        HORNET_ARENA_UNPOISON(c.base, c.size);
        ::operator delete(c.base, std::align_val_t{kChunkAlign});
    }
}

void
Arena::activate_chunk(std::size_t idx)
{
    active_ = idx;
    cur_ = reinterpret_cast<std::uintptr_t>(chunks_[idx].base);
    end_ = cur_ + chunks_[idx].size;
}

void
Arena::grow(std::size_t min_payload)
{
    // Reuse chunks retained by reset() before reserving new memory.
    // Chunks after the active one are guaranteed unused this
    // generation (the cursor only ever moves forward through the
    // list), so scanning forward is enough.
    const std::size_t from = chunks_.empty() ? 0 : active_ + 1;
    for (std::size_t i = from; i < chunks_.size(); ++i) {
        if (chunks_[i].size >= min_payload) {
            activate_chunk(i);
            return;
        }
    }
    const std::size_t size = std::max(chunk_bytes_, min_payload);
    auto *base = static_cast<std::byte *>(
        ::operator new(size, std::align_val_t{kChunkAlign}));
    HORNET_ARENA_POISON(base, size);
    chunks_.push_back({base, size});
    reserved_ += size;
    activate_chunk(chunks_.size() - 1);
}

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    if (!is_pow2(align))
        fatal("Arena::allocate: alignment must be a power of two");
    if (bytes == 0)
        bytes = 1;
    std::uintptr_t aligned = (cur_ + (align - 1)) & ~(align - 1);
    if (cur_ == 0 || aligned + bytes + kRedzoneBytes > end_) {
        // Worst case the fresh chunk's base needs (align - 1) bytes of
        // padding (chunk bases are only 64-byte aligned).
        grow(bytes + align - 1 + kRedzoneBytes);
        aligned = (cur_ + (align - 1)) & ~(align - 1);
    }
    void *p = reinterpret_cast<void *>(aligned);
    HORNET_ARENA_UNPOISON(p, bytes);
    used_ += (aligned - cur_) + bytes + kRedzoneBytes;
    cur_ = aligned + bytes + kRedzoneBytes;
    return p;
}

void
Arena::reset()
{
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it)
        it->fn(it->obj);
    dtors_.clear();
    for (const Chunk &c : chunks_)
        HORNET_ARENA_POISON(c.base, c.size);
    used_ = 0;
    cur_ = 0;
    end_ = 0;
    if (!chunks_.empty())
        activate_chunk(0);
}

} // namespace hornet::common
