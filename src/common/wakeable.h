/**
 * @file
 * The Wakeable interface: the push half of the event-driven wake seam.
 *
 * Communication endpoints that can receive work asynchronously (a tile
 * whose VC buffers another tile produces into) implement Wakeable so
 * that the *producer* of the work can tell the consumer's scheduler
 * "something will happen for you at cycle c" at the moment the work is
 * handed over, instead of the scheduler re-polling every component
 * every cycle. The interface lives in common/ so that the network
 * layer (which owns the communication points) can wake the simulation
 * layer (which owns the schedulers) without a dependency cycle.
 */
#ifndef HORNET_COMMON_WAKEABLE_H
#define HORNET_COMMON_WAKEABLE_H

#include "common/types.h"

namespace hornet {

/**
 * Anything that can be told "new work for you becomes actionable at
 * cycle @p at". Implementations must be safe to call from any thread:
 * producers invoke notify_activity() from their own thread while the
 * consumer may be running (the wake is recorded and applied at the
 * consumer's next synchronization point). Spurious or early wakes must
 * be harmless — waking an idle consumer is a scheduling hint, never an
 * observable simulation event.
 */
class Wakeable
{
  public:
    /** Wakeables are owned elsewhere; destruction via this interface
     *  is not supported. */
    virtual ~Wakeable() = default;

    /**
     * Announce externally produced work that becomes actionable at
     * cycle @p at (e.g. a flit whose arrival_cycle is @p at was pushed
     * into one of this consumer's ingress buffers). Callable from any
     * thread; idempotent; never later than the work it announces.
     */
    virtual void notify_activity(Cycle at) = 0;
};

} // namespace hornet

#endif // HORNET_COMMON_WAKEABLE_H
