#include "common/placement.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <thread>

#include "common/log.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace hornet::common {

PinMode
pin_mode_from_string(const std::string &name)
{
    if (name == "auto")
        return PinMode::Auto;
    if (name == "none")
        return PinMode::None;
    if (name == "compact")
        return PinMode::Compact;
    if (name == "spread")
        return PinMode::Spread;
    fatal("unknown pin mode: " + name +
          " (expected auto|none|compact|spread)");
}

const char *
pin_mode_name(PinMode m)
{
    switch (m) {
    case PinMode::None:
        return "none";
    case PinMode::Compact:
        return "compact";
    case PinMode::Spread:
        return "spread";
    case PinMode::Auto:
        return "auto";
    }
    return "?";
}

unsigned
numa_node_count()
{
#if defined(__linux__)
    // Count /sys/devices/system/node/node<N> entries; the kernel
    // numbers online nodes densely from 0 on the machines we care
    // about, so probing sequentially is enough.
    unsigned n = 0;
    for (;; ++n) {
        const std::string path =
            "/sys/devices/system/node/node" + std::to_string(n);
        if (access(path.c_str(), F_OK) != 0)
            break;
        if (n >= 1024) // defensive bound; no host has this many
            break;
    }
    return n > 0 ? n : 1;
#else
    return 1;
#endif
}

PinMode
resolve_pin_mode(PinMode m)
{
    if (m != PinMode::Auto)
        return m;
    // Affinity only buys anything when memory locality is at stake;
    // on single-node hosts the OS scheduler does fine on its own.
    return numa_node_count() > 1 ? PinMode::Compact : PinMode::None;
}

#if defined(__linux__)
namespace {

int
cpu_for(PinMode mode, unsigned tid, unsigned nthreads)
{
    const unsigned ncpu =
        std::max(1u, std::thread::hardware_concurrency());
    switch (mode) {
    case PinMode::Compact:
        return static_cast<int>(tid % ncpu);
    case PinMode::Spread:
        return static_cast<int>(
            (static_cast<std::uint64_t>(tid) * ncpu) /
            std::max(1u, nthreads) % ncpu);
    default:
        return -1;
    }
}

} // namespace
#endif

void
apply_thread_pin(PinMode mode, unsigned tid, unsigned nthreads)
{
#if defined(__linux__)
    const int cpu = cpu_for(resolve_pin_mode(mode), tid, nthreads);
    if (cpu < 0)
        return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    // Best effort: a failure (e.g. restricted cpuset) must not abort
    // the simulation, it just loses the locality hint.
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)mode;
    (void)tid;
    (void)nthreads;
#endif
}

ScopedThreadPin::ScopedThreadPin(PinMode mode, unsigned tid,
                                 unsigned nthreads)
{
#if defined(__linux__)
    if (resolve_pin_mode(mode) == PinMode::None)
        return;
    cpu_set_t old;
    CPU_ZERO(&old);
    if (pthread_getaffinity_np(pthread_self(), sizeof(old), &old) == 0) {
        saved_mask_.assign(
            reinterpret_cast<const unsigned char *>(&old),
            reinterpret_cast<const unsigned char *>(&old) + sizeof(old));
    }
#endif
    apply_thread_pin(mode, tid, nthreads);
}

ScopedThreadPin::~ScopedThreadPin()
{
#if defined(__linux__)
    if (saved_mask_.size() != sizeof(cpu_set_t))
        return;
    cpu_set_t old;
    std::memcpy(&old, saved_mask_.data(), sizeof(old));
    (void)pthread_setaffinity_np(pthread_self(), sizeof(old), &old);
#endif
}

void
for_each_group(const NodePlacement &p,
               const std::function<void(unsigned)> &fn)
{
    if (!p.parallel || p.groups <= 1) {
        for (unsigned g = 0; g < std::max(1u, p.groups); ++g)
            fn(g);
        return;
    }
    std::vector<std::thread> workers;
    workers.reserve(p.groups);
    for (unsigned g = 0; g < p.groups; ++g) {
        workers.emplace_back([&p, &fn, g] {
            // Pin before the first write so the pages the arena touches
            // are faulted in on the group's own core (first touch).
            apply_thread_pin(p.pin, g, p.groups);
            fn(g);
        });
    }
    for (auto &w : workers)
        w.join();
}

} // namespace hornet::common
