#include "common/stats.h"

#include <bit>
#include <sstream>

namespace hornet {

namespace {

/** FNV-1a accumulator state. */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ull; ///< FNV-1a offset basis

    /** Fold one 64-bit word, byte by byte. */
    void
    mix(std::uint64_t x)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (x >> (8 * i)) & 0xffu;
            h *= 1099511628211ull; // FNV-1a prime
        }
    }

    /** Fold a double bit-for-bit. */
    void mix(double x) { mix(std::bit_cast<std::uint64_t>(x)); }

    /** Fold a latency accumulator (count + bitwise sum/min/max). */
    void
    mix(const RunningStat &r)
    {
        mix(r.count());
        mix(r.sum());
        mix(r.min());
        mix(r.max());
    }
};

} // namespace

double
Histogram::percentile(double p) const
{
    std::uint64_t n = total();
    if (n == 0)
        return 0.0;
    auto target = static_cast<std::uint64_t>(p * static_cast<double>(n));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target)
            return (static_cast<double>(i) + 0.5) * width_;
    }
    return static_cast<double>(buckets_.size()) * width_;
}

void
TileStats::merge(const TileStats &o)
{
    flits_injected += o.flits_injected;
    flits_delivered += o.flits_delivered;
    packets_injected += o.packets_injected;
    packets_delivered += o.packets_delivered;
    buffer_writes += o.buffer_writes;
    buffer_reads += o.buffer_reads;
    xbar_transits += o.xbar_transits;
    link_transits += o.link_transits;
    va_grants += o.va_grants;
    sa_grants += o.sa_grants;
    va_stalls += o.va_stalls;
    sa_stalls += o.sa_stalls;
    credit_stalls += o.credit_stalls;
    flit_latency.merge(o.flit_latency);
    packet_latency.merge(o.packet_latency);
    packet_latency_hist.merge(o.packet_latency_hist);
}

std::string
SystemStats::summary() const
{
    std::ostringstream os;
    os << "packets injected=" << total.packets_injected
       << " delivered=" << total.packets_delivered
       << " flits injected=" << total.flits_injected
       << " delivered=" << total.flits_delivered
       << " avg packet latency=" << avg_packet_latency()
       << " avg flit latency=" << avg_flit_latency();
    if (tile_cycles_run + tile_cycles_skipped != 0) {
        // Scheduling effectiveness: how much of the tile x cycle grid
        // fast-forwarding and event-driven sleep avoided ticking.
        const double skipped_frac =
            static_cast<double>(tile_cycles_skipped) /
            static_cast<double>(tile_cycles_run + tile_cycles_skipped);
        os << " idle tile-cycles skipped=" << tile_cycles_skipped << " ("
           << 100.0 * skipped_frac << "%)"
           << " ff cycles skipped=" << ff_skipped_cycles;
    }
    if (comp_cycles_run + comp_cycles_skipped != 0) {
        // Finer-grain counterpart: component x cycle grid coverage
        // (differs from the tile fraction only under event-fine).
        const double comp_frac =
            static_cast<double>(comp_cycles_skipped) /
            static_cast<double>(comp_cycles_run + comp_cycles_skipped);
        os << " idle component-cycles skipped=" << comp_cycles_skipped
           << " (" << 100.0 * comp_frac << "%)";
    }
    if (arena_bytes_used != 0) {
        os << " arena bytes used=" << arena_bytes_used
           << " reserved=" << arena_bytes_reserved << " ("
           << arena_per_group.size() << " groups, "
           << arena_bytes_per_tile << " bytes/tile)";
    }
    return os.str();
}

std::uint64_t
stats_fingerprint(const SystemStats &s)
{
    Fnv f;
    f.mix(static_cast<std::uint64_t>(s.per_tile.size()));
    for (const TileStats &t : s.per_tile) {
        f.mix(t.flits_injected);
        f.mix(t.flits_delivered);
        f.mix(t.packets_injected);
        f.mix(t.packets_delivered);
        f.mix(t.buffer_writes);
        f.mix(t.buffer_reads);
        f.mix(t.xbar_transits);
        f.mix(t.link_transits);
        f.mix(t.va_grants);
        f.mix(t.sa_grants);
        f.mix(t.va_stalls);
        f.mix(t.sa_stalls);
        f.mix(t.credit_stalls);
        f.mix(t.flit_latency);
        f.mix(t.packet_latency);
        for (std::uint64_t b : t.packet_latency_hist.buckets())
            f.mix(b);
        f.mix(t.packet_latency_hist.overflow());
    }
    // per_flow is a std::map: iteration order is flow-id order, stable
    // across runs by construction.
    f.mix(static_cast<std::uint64_t>(s.per_flow.size()));
    for (const auto &[flow, fs] : s.per_flow) {
        f.mix(static_cast<std::uint64_t>(flow));
        f.mix(fs.packets_delivered);
        f.mix(fs.flits_delivered);
        f.mix(fs.packet_latency);
    }
    return f.h;
}

} // namespace hornet
