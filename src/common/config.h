/**
 * @file
 * Key/value configuration store with typed accessors and an INI-style
 * text parser. Used to drive whole-system construction so that every
 * hardware parameter the paper calls configurable (Table I) is settable
 * from a config file or from code.
 */
#ifndef HORNET_COMMON_CONFIG_H
#define HORNET_COMMON_CONFIG_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hornet {

/**
 * Flat string key/value config with "section.key" naming.
 *
 * Values are stored as strings; typed getters parse on access and
 * fatal() on malformed values. Getters with a default never fail on a
 * missing key; require_* getters fatal() when the key is absent.
 */
class Config
{
  public:
    /** Empty config; every getter returns its default. */
    Config() = default;

    /** Parse INI-style text: [section] headers, key = value lines,
     *  '#' or ';' comments. Later duplicates overwrite earlier ones. */
    static Config from_string(const std::string &text);

    /** Load and parse a config file. */
    static Config from_file(const std::string &path);

    /** Set (or overwrite) a value. */
    void set(const std::string &key, const std::string &value);
    /** Set (or overwrite) an integer value. */
    void set(const std::string &key, std::int64_t value);
    /** Set (or overwrite) a floating-point value. */
    void set(const std::string &key, double value);
    /** Set (or overwrite) a boolean value ("true"/"false"). */
    void set(const std::string &key, bool value);

    /** True when @p key is present. */
    bool has(const std::string &key) const;

    /** String value of @p key, or @p def when absent. */
    std::string get_string(const std::string &key,
                           const std::string &def) const;
    /** Integer value of @p key, or @p def when absent. */
    std::int64_t get_int(const std::string &key, std::int64_t def) const;
    /** Floating-point value of @p key, or @p def when absent. */
    double get_double(const std::string &key, double def) const;
    /** Boolean value of @p key, or @p def when absent. */
    bool get_bool(const std::string &key, bool def) const;

    /** String value of @p key; fatal() when absent. */
    std::string require_string(const std::string &key) const;
    /** Integer value of @p key; fatal() when absent. */
    std::int64_t require_int(const std::string &key) const;
    /** Floating-point value of @p key; fatal() when absent. */
    double require_double(const std::string &key) const;

    /** Parse a comma-separated integer list, e.g. "0,7,56,63". */
    std::vector<std::int64_t> get_int_list(
        const std::string &key, const std::vector<std::int64_t> &def) const;

    /**
     * String getter restricted to an enumerated value set: returns
     * @p def when the key is absent, and fatal()s — listing the
     * accepted spellings — when the resulting value (stored or
     * defaulted; @p def gets no exemption) is not one of @p allowed.
     * Used for selector keys (sync backend, VCA mode, routing scheme)
     * so a typo dies with a helpful message instead of falling through
     * to a default.
     */
    std::string get_enum(const std::string &key, const std::string &def,
                         const std::vector<std::string> &allowed) const;

    /** All keys in sorted order (for dumps and tests). */
    std::vector<std::string> keys() const;

    /** Serialize back to INI text (sorted, sectionless keys first). */
    std::string to_string() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace hornet

#endif // HORNET_COMMON_CONFIG_H
