/**
 * @file
 * Minimal logging / error-reporting helpers in the spirit of gem5's
 * logging.hh: fatal() for user errors, panic() for simulator bugs,
 * warn()/inform() for status messages.
 */
#ifndef HORNET_COMMON_LOG_H
#define HORNET_COMMON_LOG_H

#include <sstream>
#include <string>

namespace hornet {

/** Verbosity levels for inform(). */
enum class LogLevel { Quiet = 0, Normal = 1, Verbose = 2 };

/** Global log verbosity (default Normal). */
LogLevel log_level();

/** Set global log verbosity. */
void set_log_level(LogLevel level);

/** Print an informational message (suppressed when Quiet). */
void inform(const std::string &msg);

/** Print a verbose debug message (printed only when Verbose). */
void trace(const std::string &msg);

/** Print a warning; never stops the simulation. */
void warn(const std::string &msg);

/**
 * Abort due to a user-caused condition (bad configuration, invalid
 * arguments). Throws std::runtime_error so tests can observe it.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Abort due to an internal simulator bug (invariant violation).
 * Throws std::logic_error so tests can observe it.
 */
[[noreturn]] void panic(const std::string &msg);

/** Implementation details of strcat(); not part of the public API. */
namespace detail {

/** Recursion terminator for format_into. */
inline void format_into(std::ostringstream &) {}

/** Stream @p v and the remaining pieces into @p os, in order. */
template <typename T, typename... Rest>
void
format_into(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    format_into(os, rest...);
}

} // namespace detail

/** Build a message from stream-formattable pieces. */
template <typename... Args>
std::string
strcat(const Args &...args)
{
    std::ostringstream os;
    detail::format_into(os, args...);
    return os.str();
}

} // namespace hornet

#endif // HORNET_COMMON_LOG_H
