#include "common/log.h"

#include <atomic>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace hornet {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Normal};
std::mutex g_io_mutex;

void
emit(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lk(g_io_mutex);
    std::cerr << prefix << msg << "\n";
}

} // namespace

LogLevel
log_level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
set_log_level(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
inform(const std::string &msg)
{
    if (log_level() != LogLevel::Quiet)
        emit("info: ", msg);
}

void
trace(const std::string &msg)
{
    if (log_level() == LogLevel::Verbose)
        emit("trace: ", msg);
}

void
warn(const std::string &msg)
{
    emit("warn: ", msg);
}

void
fatal(const std::string &msg)
{
    throw std::runtime_error("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw std::logic_error("panic: " + msg);
}

} // namespace hornet
