#include "thermal/thermal_model.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace hornet::thermal {

ThermalModel::ThermalModel(const net::Topology &topo,
                           const ThermalConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.r_vertical <= 0.0 || cfg_.r_lateral <= 0.0 ||
        cfg_.c_tile <= 0.0)
        fatal("thermal model: resistances and capacitance must be > 0");
    const std::uint32_t n = topo.num_nodes();
    neighbors_.resize(n);
    g_vert_.assign(n, 1.0 / cfg_.r_vertical);
    std::uint32_t max_degree = 0;
    for (NodeId i = 0; i < n; ++i) {
        for (NodeId j : topo.neighbors(i))
            neighbors_[i].push_back(j);
        max_degree = std::max<std::uint32_t>(
            max_degree, static_cast<std::uint32_t>(neighbors_[i].size()));
    }
    // Boundary tiles conduct into the spreader periphery.
    for (NodeId i = 0; i < n; ++i) {
        const auto missing =
            static_cast<double>(max_degree - neighbors_[i].size());
        g_vert_[i] += missing * cfg_.g_edge_per_missing_neighbor;
    }
    temp_.assign(n, cfg_.ambient_c);
    // Explicit-Euler stability: dt < C / (g_vert + deg/Rl); use half.
    double g_vmax = 0.0;
    for (double g : g_vert_)
        g_vmax = std::max(g_vmax, g);
    const double g_max = g_vmax + max_degree / cfg_.r_lateral;
    max_stable_dt_ = 0.5 * cfg_.c_tile / g_max;
}

void
ThermalModel::reset(double temp_c)
{
    std::fill(temp_.begin(), temp_.end(), temp_c);
}

void
ThermalModel::step(const std::vector<double> &power_w, double dt_seconds)
{
    if (power_w.size() != temp_.size())
        fatal("thermal step: power vector size mismatch");
    if (dt_seconds <= 0.0)
        return;
    const auto substeps = static_cast<std::uint64_t>(
        std::ceil(dt_seconds / max_stable_dt_));
    const double h = dt_seconds / static_cast<double>(substeps);
    std::vector<double> next(temp_.size());
    for (std::uint64_t s = 0; s < substeps; ++s) {
        for (std::size_t i = 0; i < temp_.size(); ++i) {
            double flow = power_w[i] -
                          (temp_[i] - cfg_.ambient_c) * g_vert_[i];
            for (std::uint32_t j : neighbors_[i])
                flow -= (temp_[i] - temp_[j]) / cfg_.r_lateral;
            next[i] = temp_[i] + h * flow / cfg_.c_tile;
        }
        temp_.swap(next);
    }
}

std::vector<double>
ThermalModel::steady_state(const std::vector<double> &power_w) const
{
    if (power_w.size() != temp_.size())
        fatal("thermal steady state: power vector size mismatch");
    std::vector<double> t(temp_.size(), cfg_.ambient_c);
    // Gauss-Seidel on the balance equations.
    for (int iter = 0; iter < 20000; ++iter) {
        double max_delta = 0.0;
        for (std::size_t i = 0; i < t.size(); ++i) {
            double num = power_w[i] + cfg_.ambient_c * g_vert_[i];
            double den = g_vert_[i];
            for (std::uint32_t j : neighbors_[i]) {
                num += t[j] / cfg_.r_lateral;
                den += 1.0 / cfg_.r_lateral;
            }
            double nt = num / den;
            max_delta = std::max(max_delta, std::abs(nt - t[i]));
            t[i] = nt;
        }
        if (max_delta < 1e-9)
            break;
    }
    return t;
}

std::uint32_t
ThermalModel::hottest(const std::vector<double> &temps)
{
    return static_cast<std::uint32_t>(
        std::max_element(temps.begin(), temps.end()) - temps.begin());
}

} // namespace hornet::thermal
