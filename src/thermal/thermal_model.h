/**
 * @file
 * Tile-grid thermal model in the style of HOTSPOT (paper II-B, IV-E).
 *
 * Each tile is a lumped thermal node with capacitance C, a vertical
 * conduction path to ambient through the spreader/heatsink (R_v), and
 * lateral conduction to each adjacent tile (R_l):
 *
 *   C dT_i/dt = P_i - (T_i - T_amb)/R_v - sum_j (T_i - T_j)/R_l
 *
 * Transient solves use forward Euler with automatic sub-stepping for
 * stability; steady state uses Gauss-Seidel iteration. This supports
 * both the time-resolved temperature traces of Fig 13 and the
 * steady-state maps of Fig 14.
 */
#ifndef HORNET_THERMAL_THERMAL_MODEL_H
#define HORNET_THERMAL_THERMAL_MODEL_H

#include <vector>

#include "common/types.h"
#include "net/topology.h"

namespace hornet::thermal {

/** Package and die thermal parameters. */
struct ThermalConfig
{
    /** Ambient (heatsink base) temperature, deg C. */
    double ambient_c = 45.0;
    /** Vertical resistance tile -> ambient, K/W. */
    double r_vertical = 8.0;
    /** Lateral resistance between adjacent tiles, K/W. */
    double r_lateral = 4.0;
    /** Tile thermal capacitance, J/K. */
    double c_tile = 2.0e-4;
    /**
     * Extra conductance to ambient per missing lateral neighbour
     * (W/K): boundary tiles conduct into the heat-spreader periphery,
     * as in HOTSPOT's spreader model. 0 disables the effect.
     */
    double g_edge_per_missing_neighbor = 0.0;
};

/**
 * RC thermal network over the tiles of a topology (lateral coupling
 * follows the interconnect's physical adjacency).
 */
class ThermalModel
{
  public:
    /** RC network over @p topo's tiles (one thermal node per node,
     *  lateral coupling along links) with parameters @p cfg. */
    ThermalModel(const net::Topology &topo, const ThermalConfig &cfg = {});

    /** Number of thermal nodes (= topology nodes). */
    std::uint32_t num_tiles() const
    {
        return static_cast<std::uint32_t>(temp_.size());
    }

    /** Current per-tile temperatures, deg C. */
    const std::vector<double> &temperatures() const { return temp_; }

    /** Reset all tiles to a given temperature. */
    void reset(double temp_c);
    /** Reset all tiles to the ambient temperature. */
    void reset() { reset(cfg_.ambient_c); }

    /**
     * Advance the transient solution by @p dt_seconds with constant
     * per-tile power @p power_w (watts). Internally sub-steps to stay
     * numerically stable.
     */
    void step(const std::vector<double> &power_w, double dt_seconds);

    /**
     * Steady-state temperatures for constant @p power_w, independent
     * of the current transient state.
     */
    std::vector<double> steady_state(
        const std::vector<double> &power_w) const;

    /** Hottest tile index of a temperature field. */
    static std::uint32_t hottest(const std::vector<double> &temps);

    /** The package/die parameters this model was built with. */
    const ThermalConfig &config() const { return cfg_; }

  private:
    ThermalConfig cfg_;
    std::vector<std::vector<std::uint32_t>> neighbors_;
    std::vector<double> g_vert_; ///< per-tile conductance to ambient
    std::vector<double> temp_;
    double max_stable_dt_;
};

} // namespace hornet::thermal

#endif // HORNET_THERMAL_THERMAL_MODEL_H
