/**
 * @file
 * Micro benchmarks (google-benchmark): raw component throughput used
 * as a performance-regression guard — VC buffer push/pop, routing
 * table lookups, router pipeline cycles, and whole-system cycles/sec
 * at several mesh sizes.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "net/vc_buffer.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

void
BM_VcBufferPushPop(benchmark::State &state)
{
    net::VcBuffer buf(8);
    net::Flit f;
    f.flow = 1;
    std::uint64_t n = 0;
    for (auto _ : state) {
        f.arrival_cycle = n;
        buf.push(f);
        benchmark::DoNotOptimize(buf.front_visible(n));
        buf.pop();
        buf.commit_negedge();
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_VcBufferPushPop);

void
BM_RoutingTableLookup(benchmark::State &state)
{
    net::RoutingTable table(0);
    for (FlowId f = 0; f < 1024; ++f)
        table.add(f % 5, f, net::RouteResult{1, f, 1.0});
    Rng rng(3);
    FlowId f = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.pick(f % 5, f, rng));
        f = (f + 1) % 1024;
    }
}
BENCHMARK(BM_RoutingTableLookup);

void
BM_SystemCyclesPerSecond(benchmark::State &state)
{
    const auto side = static_cast<std::uint32_t>(state.range(0));
    net::Topology topo = net::Topology::mesh2d(side, side);
    auto sys = make_synthetic(topo, {}, "uniform", 0.1, 8, 9);
    Cycle target = 0;
    for (auto _ : state) {
        target += 100;
        sim::RunOptions ro;
        ro.max_cycles = target;
        sys->run(ro);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(target) *
                            topo.num_nodes());
    state.counters["tile_cycles/s"] = benchmark::Counter(
        static_cast<double>(target) * topo.num_nodes(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SystemCyclesPerSecond)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
