/**
 * @file
 * Fig 11: effect of the number of memory controllers on in-network
 * latency for RADIX-like traffic, across routing x VCA choices.
 * Five controllers relieve the single-controller hotspot
 * substantially, but nowhere near five-fold — and with 5 MCs the
 * spread between routing/VCA schemes shrinks, so a designer might
 * pick the simplest switch (the paper's design-tradeoff point).
 */
#include <cstdio>

#include "bench_util.h"
#include "workloads/splash.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

double
run_config(const std::vector<NodeId> &mcs, const std::string &routing,
           net::VcaMode mode)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    auto profile = workloads::splash_profile("radix");
    // Keep the single-controller case congested but shy of deep
    // saturation, as in the paper's trace replays.
    profile.active_rate = 0.12;
    auto events =
        workloads::synthesize_trace(profile, topo, mcs, 60000, 31);
    net::NetworkConfig cfg;
    cfg.router.net_vcs = 4;
    cfg.router.vca_mode = mode;
    TraceRunOptions opts;
    opts.cycles = 120000;
    opts.stop_when_done = true;
    opts.routing = routing;
    auto r = run_trace(topo, cfg, events, opts);
    return r.stats.avg_packet_latency();
}

} // namespace

int
main()
{
    std::printf("# Fig 11: in-network latency, 1 vs 5 memory "
                "controllers (RADIX-like, 8x8)\n");
    std::printf("mcs,routing,vca,avg_packet_latency\n");
    const std::vector<NodeId> one_mc{0};            // corner (paper)
    const std::vector<NodeId> five_mc{0, 7, 27, 56, 63};
    for (const auto &mcs : {one_mc, five_mc}) {
        for (const char *routing : {"xy", "o1turn", "romm"}) {
            for (auto mode :
                 {net::VcaMode::Dynamic, net::VcaMode::Edvca}) {
                double lat = run_config(mcs, routing, mode);
                std::printf("%zuMC,%s,%s,%.2f\n", mcs.size(), routing,
                            net::to_string(mode), lat);
            }
        }
    }
    std::printf("# paper shape: 5 MCs much faster but < 5x; scheme "
                "spread shrinks with 5 MCs\n");
    return 0;
}
