/**
 * @file
 * Fig 6a: parallelization speedup vs simulation thread count, for
 * cycle-accurate and 5-cycle loose synchronization, on (a) synthetic
 * SHUFFLE traffic and (b) the blackscholes kernel on the MIPS
 * frontend.
 *
 * The paper measured 1..24 HT cores on a 2-die Xeon (5x+ speedup on 6
 * same-die cores, 11x+ with loose sync across dies). This container
 * exposes a single hardware core, so wall-clock speedups here are
 * bounded by 1x; the harness still demonstrates the sweep and that
 * loose synchronization reduces barrier overhead (visible as relative
 * differences even when oversubscribed). See docs/BENCHMARKS.md.
 */
#include <cstdio>

#include "bench_util.h"
#include "mips/core.h"
#include "workloads/programs.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

double
run_synthetic(unsigned threads, std::uint32_t sync)
{
    net::Topology topo = net::Topology::mesh2d(16, 16);
    auto sys = make_synthetic(topo, {}, "shuffle", 0.12, 8, 42);
    return wall_seconds([&] {
        sim::RunOptions ro;
        ro.max_cycles = 12000;
        ro.threads = threads;
        ro.sync_period = sync;
        sys->run(ro);
    });
}

double
run_blackscholes(unsigned threads, std::uint32_t sync)
{
    mips::MipsMachineConfig cfg;
    cfg.program = workloads::blackscholes_program(192, 1);
    cfg.mem.mc_nodes = {0, 63};
    cfg.mem.dram_latency = 40;
    mips::MipsMachine m(net::Topology::mesh2d(8, 8), cfg);
    return wall_seconds(
        [&] { m.run_until_done(3000000, threads, sync); });
}

} // namespace

int
main()
{
    std::printf("# Fig 6a: speedup vs #simulation threads\n");
    std::printf("# host note: this machine exposes a single hardware "
                "core; speedups are host-limited\n");
    std::printf(
        "workload,sync,threads,wall_s,speedup_vs_1thread\n");

    const unsigned thread_counts[] = {1, 2, 4};
    for (const char *sync_name : {"cycle-accurate", "5-cycle"}) {
        std::uint32_t sync =
            std::string(sync_name) == "cycle-accurate" ? 1 : 5;
        double base = 0.0;
        for (unsigned t : thread_counts) {
            double w = run_synthetic(t, sync);
            if (t == 1)
                base = w;
            std::printf("shuffle-16x16,%s,%u,%.3f,%.2f\n", sync_name, t,
                        w, base / w);
        }
    }
    for (const char *sync_name : {"cycle-accurate", "5-cycle"}) {
        std::uint32_t sync =
            std::string(sync_name) == "cycle-accurate" ? 1 : 5;
        double base = 0.0;
        for (unsigned t : thread_counts) {
            double w = run_blackscholes(t, sync);
            if (t == 1)
                base = w;
            std::printf("blackscholes-mips-8x8,%s,%u,%.3f,%.2f\n",
                        sync_name, t, w, base / w);
        }
    }
    std::printf("# paper shape: near-linear scaling up to 6 same-die "
                "cores (cycle-accurate); loose sync needed to scale "
                "across dies\n");
    return 0;
}
