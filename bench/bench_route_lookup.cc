/**
 * @file
 * Route-table lookup microbench (ISSUE 8): the per-flit lookup cost of
 * the map-era `std::unordered_map<RouteKey, std::vector<RouteResult>>`
 * tables against the frozen common::FlatTable form the routing/VCA
 * tables now compile into before the first run.
 *
 * Each measured lookup does the work Router::do_route_compute's
 * weighted pick needs: resolve the key to its option list, read the
 * first option, and obtain the options' total weight. The map path
 * pays a bucket-pointer chase into a heap node, an indirection into
 * the option vector, and a per-lookup left-to-right weight
 * accumulation (what Rng::pick_weighted did); the flat path pays one
 * hash, a short linear probe in one contiguous slot array, and reads
 * the precomputed total. Both paths accumulate the same checksum, so
 * the bench doubles as a differential check.
 *
 * Two regimes bracket the simulator's behaviour: `hot` keeps one
 * small router table resident in cache (the steady state of a busy
 * router re-resolving its few active flows), `cold` strides across
 * many router tables so every lookup starts from a cold line (the
 * many-router sweep of a large mesh time-slice). The flat_over_map
 * ratio rows carried the ISSUE 8 acceptance target (>= 3x on the hot
 * rows, met at 3.99x when the PR landed); the in-binary floor is now
 * 2.5x because the *map* side of the ratio swings with code layout —
 * unrelated TU edits in ISSUE 9 left the flat rate unchanged while
 * the map loop sped up ~40%, and the absolute flat throughput (the
 * signal that actually protects the simulator) is regression-gated
 * per row instead. All rows feed the perf-regression harness
 * (scripts/check_bench_regression.py) via --json=PATH, and --quick
 * shortens the repetition counts with unchanged row names.
 */
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/flat_table.h"
#include "net/routing_table.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

JsonReport report("bench_route_lookup");

using MapTable = std::unordered_map<net::RouteKey,
                                    std::vector<net::RouteResult>,
                                    net::RouteKeyHash>;
using FlatTable = common::FlatTable<net::RouteKey, net::RouteResult,
                                    net::RouteKeyHash>;

/** Split-mix PRNG: stable workload across standard libraries. */
struct Draw
{
    std::uint64_t s;
    explicit Draw(std::uint64_t seed) : s(seed) {}
    std::uint64_t
    operator()()
    {
        s += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
    std::uint64_t
    below(std::uint64_t n)
    {
        return (*this)() % n;
    }
};

/** One lookup of the sequence: which table, which key. */
using Probe = std::pair<std::uint32_t, net::RouteKey>;

/** The two table forms plus the shuffled lookup sequence. */
struct Workload
{
    std::vector<MapTable> maps;
    std::vector<FlatTable> flats;
    std::vector<Probe> seq;
};

Workload
make_workload(std::uint32_t tables, std::uint32_t keys_per_table,
              std::uint64_t seed)
{
    Draw d(seed);
    Workload w;
    w.maps.resize(tables);
    w.flats.resize(tables);
    for (std::uint32_t t = 0; t < tables; ++t) {
        MapTable &m = w.maps[t];
        while (m.size() < keys_per_table) {
            net::RouteKey k{static_cast<NodeId>(d.below(5)),
                            static_cast<FlowId>(d.below(1u << 20))};
            auto &opts = m[k];
            if (!opts.empty())
                continue; // duplicate draw
            const std::size_t n = 1 + d.below(2);
            for (std::size_t i = 0; i < n; ++i)
                opts.push_back({static_cast<NodeId>(d.below(64)),
                                k.flow,
                                0.5 * static_cast<double>(1 + d.below(4))});
            w.seq.emplace_back(t, k);
        }
        w.flats[t].build(m);
    }
    // Shuffle the probe order (Fisher-Yates on the stable PRNG): the
    // cold regime must not walk tables in construction order.
    for (std::size_t i = w.seq.size(); i > 1; --i)
        std::swap(w.seq[i - 1], w.seq[d.below(i)]);
    return w;
}

/** Map-era lookup work, as Router::do_route_compute actually paid it:
 *  one find for the option scan, a second find inside pick() (the old
 *  RoutingTable::pick re-probed the map), each a bucket chase plus a
 *  vector indirection, plus the per-pick weight accumulation. Returns
 *  the checksum. */
double
run_map(const Workload &w, unsigned reps)
{
    double acc = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        for (const auto &[t, key] : w.seq) {
            // The option scan (route-validity / adaptivity checks).
            const auto it = w.maps[t].find(key);
            acc += static_cast<double>(it->second.front().next_node);
            // The weighted pick: the map era re-resolved the key.
            const auto it2 = w.maps[t].find(key);
            const std::vector<net::RouteResult> &opts = it2->second;
            double total = 0.0;
            for (const net::RouteResult &o : opts)
                total = total + o.weight;
            acc += total;
        }
    }
    return acc;
}

/** Frozen lookup work: one probe, precomputed total. Returns the
 *  checksum (must equal run_map's bitwise). */
double
run_flat(const Workload &w, unsigned reps)
{
    double acc = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        for (const auto &[t, key] : w.seq) {
            const FlatTable::Entry *e = w.flats[t].lookup(key);
            acc += static_cast<double>(e->front().next_node);
            acc += e->total_weight;
        }
    }
    return acc;
}

/** Dead-code-elimination sink: every timed run's checksum lands here,
 *  so the optimizer cannot drop the lookup loops. */
volatile double g_sink;

/** Fastest of three timed repetitions, in Mlookups/s. @p fn returns
 *  its checksum (stored into g_sink so the work is observable). */
template <typename Fn>
double
rate_of(Fn fn, std::uint64_t lookups)
{
    double best = 0.0;
    for (int i = 0; i < 3; ++i) {
        const double secs = wall_seconds([&] { g_sink = fn(); });
        best = std::max(best, static_cast<double>(lookups) / secs / 1e6);
    }
    return best;
}

/** Measure one regime and emit its three rows. */
double
regime(const char *name, const Workload &w, unsigned reps)
{
    const std::uint64_t lookups =
        static_cast<std::uint64_t>(w.seq.size()) * reps;
    // Checksum equality doubles as a differential check: both paths
    // accumulate option weights left to right over identical data.
    const double map_acc = run_map(w, 1);
    const double flat_acc = run_flat(w, 1);
    if (map_acc != flat_acc)
        fatal("flat table diverged from the map reference");

    const double map_rate =
        rate_of([&] { return run_map(w, reps); }, lookups);
    const double flat_rate =
        rate_of([&] { return run_flat(w, reps); }, lookups);
    const double ratio = flat_rate / map_rate;
    std::printf("%s,%zu,%.1f,%.1f,%.2f\n", name, w.seq.size(), map_rate,
                flat_rate, ratio);
    char row[64];
    std::snprintf(row, sizeof row, "%s_map_mlookups_s", name);
    report.higher_is_better(row, map_rate);
    std::snprintf(row, sizeof row, "%s_flat_mlookups_s", name);
    report.higher_is_better(row, flat_rate);
    std::snprintf(row, sizeof row, "%s_flat_over_map", name);
    report.higher_is_better(row, ratio);
    return ratio;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = BenchCli::parse(argc, argv);

    std::printf("# Frozen flat route tables vs unordered_map lookup\n");
    std::printf("regime,keys,map_mlookups_s,flat_mlookups_s,"
                "flat_over_map\n");

    // Hot: one router-sized table, resident in cache.
    const Workload hot = make_workload(1, 256, 0x407e);
    const double hot_ratio =
        regime("hot", hot, cli.quick ? 4000 : 16000);

    // Cold: many router tables, each probe starting from a cold line.
    const Workload cold = make_workload(128, 512, 0xc01d);
    regime("cold", cold, cli.quick ? 8 : 32);

    // Sanity floor on the cache-resident lookup path (see the file
    // comment: the ISSUE 8 >=3x acceptance was measured against a
    // map loop whose rate moves ~40% with code layout; the flat
    // rate itself is the stable signal and is gated per row).
    if (hot_ratio < 2.5)
        fatal("hot flat_over_map ratio below the 2.5x sanity floor");

    report.write_if_requested(cli);
    return 0;
}
