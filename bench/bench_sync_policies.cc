/**
 * @file
 * Synchronization-policy harness: sweeps sync backends × thread counts
 * and reports, for each combination, parallel speedup (the paper's
 * Fig 6a axis) and per-flit latency deviation from the cycle-accurate
 * baseline (the Fig 6b axis). This is the speed/accuracy methodology
 * behind the paper's core claim — loose synchronization buys speedup
 * at a bounded timing-fidelity cost — extended with the adaptive
 * backend, which retunes the window from observed cross-shard traffic
 * and so should match the best fixed period on bursty traffic without
 * being handed the right constant.
 *
 * Columns: scenario,policy,threads,wall_s,speedup,avg_flit_lat,
 * lat_dev_pct. Speedup is against the sequential cycle-accurate run
 * of the same scenario; lat_dev_pct is the relative error of the mean
 * delivered-flit latency against the same baseline (0 for
 * cycle-accurate runs at any thread count, by construction). Host
 * note: this container exposes a single hardware core, so wall-clock
 * speedups are host-limited; relative barrier-overhead differences
 * between policies remain visible. See docs/BENCHMARKS.md.
 */
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

constexpr Cycle kCycles = 10000;
constexpr std::uint64_t kSeed = 42;

struct Scenario
{
    const char *name;
    double rate;
    Cycle burst_period;
    std::uint32_t burst_size;
};

// Bursty: heavy synchronized bursts separated by idle gaps — the case
// the adaptive controller is built for. Steady: constant offered load,
// where a fixed period is already near-optimal.
const Scenario kScenarios[] = {
    {"bursty-8x8", 0.0, 400, 8},
    {"steady-8x8", 0.12, 0, 1},
};

struct PolicySpec
{
    const char *name;
    std::uint32_t period; ///< 0 = adaptive, 1 = cycle-accurate, else periodic
    bool batch; ///< window-batched cross-shard handoff
};

// periodic-20-batched isolates the two variables the adaptive row
// combines: it has adaptive's batched handoff but a fixed window, so
// adaptive-vs-it measures the controller alone.
const PolicySpec kPolicies[] = {
    {"cycle-accurate", 1, false},
    {"periodic-5", 5, false},
    {"periodic-20", 20, false},
    {"periodic-20-batched", 20, true},
    {"adaptive", 0, true},
};

struct Outcome
{
    double wall_s = 0.0;
    double avg_flit_lat = 0.0;
    std::uint64_t delivered = 0;
    std::uint32_t widest = 0;   ///< adaptive only
    std::uint32_t narrowest = 0; ///< adaptive only
};

Outcome
run_one(const Scenario &sc, const PolicySpec &ps, unsigned threads)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    auto sys = make_synthetic(topo, {}, "transpose", sc.rate, 4, kSeed,
                              "xy", sc.burst_period, sc.burst_size);

    std::unique_ptr<sim::SyncPolicy> policy;
    sim::EngineOptions opts;
    opts.max_cycles = kCycles;
    opts.batch_cross_shard = ps.batch;
    if (ps.period == 0)
        policy = std::make_unique<sim::AdaptiveSync>();
    else if (ps.period == 1)
        policy = std::make_unique<sim::CycleAccurateSync>();
    else
        policy = std::make_unique<sim::PeriodicSync>(ps.period);

    Outcome out;
    out.wall_s =
        wall_seconds([&] { sys->run(*policy, opts, threads); });
    auto stats = sys->collect_stats();
    out.avg_flit_lat = stats.avg_flit_latency();
    out.delivered = stats.total.flits_delivered;
    if (auto *ad = dynamic_cast<sim::AdaptiveSync *>(policy.get())) {
        out.widest = out.narrowest = ad->options().min_period;
        for (const auto &change : ad->history()) {
            out.widest = std::max(out.widest, change.second);
            out.narrowest = std::min(out.narrowest, change.second);
        }
    }
    return out;
}

} // namespace

int
main()
{
    std::printf("# sync-policy sweep: speedup (Fig 6a) and per-flit "
                "latency deviation (Fig 6b) per backend\n");
    std::printf("# host note: single hardware core; speedups are "
                "host-limited\n");
    std::printf("scenario,policy,threads,wall_s,speedup,"
                "avg_flit_lat,lat_dev_pct\n");

    const unsigned thread_counts[] = {1, 2, 4};
    for (const Scenario &sc : kScenarios) {
        // Sequential cycle-accurate run: the accuracy and speed
        // reference for everything else in this scenario.
        const Outcome ref = run_one(sc, kPolicies[0], 1);

        double best_fixed_wall = 0.0; // best loose fixed period, 4 thr
        double adaptive_wall = 0.0;
        double adaptive_dev = 0.0;

        for (const PolicySpec &ps : kPolicies) {
            for (unsigned t : thread_counts) {
                const Outcome o = (ps.period == 1 && t == 1)
                                      ? ref
                                      : run_one(sc, ps, t);
                const double dev =
                    ref.avg_flit_lat > 0.0
                        ? 100.0 *
                              (o.avg_flit_lat - ref.avg_flit_lat) /
                              ref.avg_flit_lat
                        : 0.0;
                std::printf("%s,%s,%u,%.3f,%.2f,%.2f,%+.2f\n", sc.name,
                            ps.name, t, o.wall_s,
                            o.wall_s > 0.0 ? ref.wall_s / o.wall_s
                                           : 0.0,
                            o.avg_flit_lat, dev);
                if (t == 4) {
                    if (ps.period > 1) {
                        if (best_fixed_wall == 0.0 ||
                            o.wall_s < best_fixed_wall)
                            best_fixed_wall = o.wall_s;
                    } else if (ps.period == 0) {
                        adaptive_wall = o.wall_s;
                        adaptive_dev = dev;
                        std::printf("# adaptive window range on %s: "
                                    "%u..%u cycles\n",
                                    sc.name, o.narrowest, o.widest);
                    }
                }
            }
        }
        std::printf("# %s @4 threads: adaptive %.3fs vs best fixed "
                    "%.3fs (%.2fx), latency dev %+.2f%%\n",
                    sc.name, adaptive_wall, best_fixed_wall,
                    adaptive_wall > 0.0
                        ? best_fixed_wall / adaptive_wall
                        : 0.0,
                    adaptive_dev);
    }
    std::printf("# paper shape: loose sync trades bounded latency "
                "error for near-linear speedup (Fig 6); adaptive "
                "should sit at the knee without hand-tuning\n");
    return 0;
}
