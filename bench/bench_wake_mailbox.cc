/**
 * @file
 * Wake-mailbox microbenchmark (ISSUE 5): raw post+drain throughput of
 * the Shard's cross-thread wake seam, isolated from the rest of the
 * simulator. P producer threads hammer wakes at a shard of sleeping
 * component-less tiles while the owning thread drains at its
 * synchronization points (prepare_summaries), exactly the traffic
 * shape of cross-shard pushes under the event scheduler.
 *
 * Before ISSUE 5 every post took the shard's mailbox mutex (a futex
 * round-trip whenever the drain or another producer held it); now the
 * fast path is a CAS claim + release publish on a bounded MPSC ring
 * (common::MpscRing), with the mutex only behind the tested overflow
 * fallback. Run the same binary source against the two fabrics for
 * the before/after table in docs/BENCHMARKS.md ("The wake mailbox and
 * the layout audit").
 *
 * Single-host note: on a one-core container the threads time-slice,
 * so mutex *contention* is rare and the delta understates what a
 * multi-core host sees; the post-path syscall/RMW cost is still
 * visible.
 */
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sim/engine.h"
#include "sim/tile.h"

namespace {

using namespace hornet;

/** Posts/second with @p producers threads posting @p per_producer
 *  wakes each at a 64-tile sleeping shard whose owner drains
 *  continuously. */
double
mwakes_per_s(unsigned producers, std::uint64_t per_producer)
{
    constexpr std::size_t kTiles = 64;
    // Far-future wake cycle: tiles stay asleep, so the loop measures
    // pure post -> drain -> apply traffic, no ticking.
    constexpr Cycle kFarFuture = 1000000;

    std::vector<std::unique_ptr<sim::Tile>> tiles;
    sim::Shard shard;
    for (std::size_t i = 0; i < kTiles; ++i) {
        tiles.push_back(std::make_unique<sim::Tile>(
            static_cast<NodeId>(i), /*seed=*/i + 1));
        shard.add_tile(tiles.back().get());
    }
    shard.prepare_run(sim::Schedule::Event);
    shard.posedge();
    shard.negedge(); // component-less tiles all retire to the heap

    std::atomic<unsigned> running{producers};
    const double s = benchutil::wall_seconds([&] {
        std::vector<std::thread> threads;
        threads.reserve(producers);
        for (unsigned p = 0; p < producers; ++p) {
            threads.emplace_back([&, p] {
                for (std::uint64_t i = 0; i < per_producer; ++i)
                    shard.wake(*tiles[(p + i) % kTiles], kFarFuture);
                running.fetch_sub(1, std::memory_order_relaxed);
            });
        }
        // The owning thread's drain loop (the consumer side of the
        // seam). Yield between drains so producers get quanta on
        // undersized hosts.
        while (running.load(std::memory_order_relaxed) != 0) {
            shard.prepare_summaries();
            std::this_thread::yield();
        }
        for (auto &t : threads)
            t.join();
        shard.prepare_summaries(); // final drain
    });
    shard.finish_run();
    return static_cast<double>(producers) *
           static_cast<double>(per_producer) / s / 1e6;
}

/**
 * Posts/second at the engine's real cadence: bursts of @p burst wakes
 * followed by a drain, all on one (unbound) thread — the shape of a
 * lockstep cycle, where producers post during the edge and the owner
 * drains at the next cycle boundary. The posting thread is never the
 * bound worker, so every post takes the cross-thread path, and the
 * interleaved drains keep the ring un-full: this measures the fast
 * path itself, where the starved-consumer rows above measure the
 * overflow fallback.
 */
double
cadenced_mwakes_per_s(std::uint64_t total, std::uint32_t burst)
{
    constexpr std::size_t kTiles = 64;
    constexpr Cycle kFarFuture = 1000000;

    std::vector<std::unique_ptr<sim::Tile>> tiles;
    sim::Shard shard;
    for (std::size_t i = 0; i < kTiles; ++i) {
        tiles.push_back(std::make_unique<sim::Tile>(
            static_cast<NodeId>(i), /*seed=*/i + 1));
        shard.add_tile(tiles.back().get());
    }
    shard.prepare_run(sim::Schedule::Event);
    shard.posedge();
    shard.negedge();

    const double s = benchutil::wall_seconds([&] {
        std::uint64_t sent = 0;
        while (sent < total) {
            for (std::uint32_t i = 0; i < burst; ++i, ++sent)
                shard.wake(*tiles[sent % kTiles], kFarFuture);
            shard.prepare_summaries();
        }
    });
    shard.finish_run();
    return static_cast<double>(total) / s / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = benchutil::BenchCli::parse(argc, argv);
    benchutil::JsonReport report("bench_wake_mailbox");

    const std::uint64_t per_producer = cli.quick ? 400'000 : 2'000'000;
    std::printf("path,Mwakes_per_s\n");
    for (unsigned p : {1u, 2u, 4u}) {
        const double rate = mwakes_per_s(p, per_producer);
        std::printf("starved_p%u,%.2f\n", p, rate);
        std::fflush(stdout);
        char name[48];
        std::snprintf(name, sizeof name, "starved_p%u_mwakes", p);
        report.higher_is_better(name, rate);
    }
    {
        const double rate =
            cadenced_mwakes_per_s(cli.quick ? 2'000'000 : 8'000'000,
                                  /*burst=*/64);
        std::printf("cadenced_burst64,%.2f\n", rate);
        report.higher_is_better("cadenced_burst64_mwakes", rate);
    }

    report.write_if_requested(cli);
    return 0;
}
