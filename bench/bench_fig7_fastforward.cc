/**
 * @file
 * Fig 7: performance benefit of fast-forwarding. Low-traffic
 * bit-complement sends coordinated bursts and leaves the network
 * drained between them, so fast-forwarding helps a lot; the H.264
 * decoder profile spreads its (equally low) traffic almost uniformly
 * in time, the network rarely drains, and fast-forwarding gains
 * little.
 */
#include <cstdio>

#include "bench_util.h"
#include "workloads/splash.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

double
run_bitcomp(bool ff, unsigned threads)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    // Coordinated bursts: every 4000 cycles each node offers a couple
    // of packets, then the network drains completely.
    auto sys = make_synthetic(topo, {}, "bitcomp", 0.0, 8, 11, "xy",
                              /*burst_period=*/4000, /*burst_size=*/2);
    return wall_seconds([&] {
        sim::RunOptions ro;
        ro.max_cycles = 150000;
        ro.threads = threads;
        ro.fast_forward = ff;
        sys->run(ro);
    });
}

double
run_h264(bool ff, unsigned threads)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    auto events = workloads::h264_profile_trace(topo, 150000, 1.0);
    TraceRunOptions opts;
    opts.cycles = 150000;
    opts.threads = threads;
    opts.fast_forward = ff;
    return run_trace(topo, {}, events, opts).wall_s;
}

} // namespace

int
main()
{
    std::printf("# Fig 7: fast-forwarding benefit (8x8 mesh, low "
                "traffic)\n");
    std::printf("workload,threads,ff,wall_s,speedup_vs_1thread_noff\n");
    double base_bc = 0.0, base_h264 = 0.0;
    for (unsigned t : {1u, 2u}) {
        for (bool ff : {false, true}) {
            double w = run_bitcomp(ff, t);
            if (t == 1 && !ff)
                base_bc = w;
            std::printf("bitcomp-burst,%u,%s,%.3f,%.2f\n", t,
                        ff ? "on" : "off", w, base_bc / w);
        }
    }
    for (unsigned t : {1u, 2u}) {
        for (bool ff : {false, true}) {
            double w = run_h264(ff, t);
            if (t == 1 && !ff)
                base_h264 = w;
            std::printf("h264-profile,%u,%s,%.3f,%.2f\n", t,
                        ff ? "on" : "off", w, base_h264 / w);
        }
    }
    std::printf("# paper shape: bursty bit-complement gains large "
                "factors from FF; the steady H.264 profile gains "
                "little\n");
    return 0;
}
