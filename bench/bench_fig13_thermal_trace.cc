/**
 * @file
 * Fig 13: hottest-tile temperature over the application's runtime for
 * OCEAN-like and RADIX-like traffic on an 8x8 mesh (MC in the corner,
 * XY routing). Router activity is sampled per epoch, converted to
 * power by the ORION-like model (plus a constant per-tile core
 * baseline) and integrated by the HOTSPOT-like transient RC solver.
 *
 * The paper's point: OCEAN's temperature is comparatively smooth, so
 * a mean or peak estimate is usable, while RADIX's strong activity
 * phases swing the temperature by many degrees — so thermal
 * constraints chosen from the mean risk runaways and from the peak
 * over-provision the package.
 */
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "power/power_model.h"
#include "thermal/thermal_model.h"
#include "workloads/splash.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

/** Per-tile core-power baseline (W): the cores, not the routers. */
constexpr double kCoreBaselineW = 3.0;
/** Router energy scale: wide-link 128-bit datapaths (see power docs). */
constexpr double kRouterEnergyScale = 150.0;

struct TraceResult
{
    std::vector<double> max_temp; ///< per epoch
    double mean = 0, peak = 0, swing = 0;
};

TraceResult
run_thermal(const char *profile_name, std::uint64_t seed)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    const Cycle duration = 240000;
    const Cycle epoch = 4000;
    auto profile = workloads::splash_profile(profile_name);
    // Thermal epochs must resolve the activity phases: stretch the
    // phase structure well past the 4k-cycle sampling epoch, keep the
    // MC share moderate so transit (not endpoint) activity dominates.
    profile.mc_fraction = 0.15;
    if (profile.name == "radix") {
        profile.phase_length = 48000; // hard on/off swings
        profile.duty_cycle = 0.5;
        profile.active_rate = 0.30;
    } else {
        profile.phase_length = 120000; // slow, shallow oscillation
        profile.duty_cycle = 0.7;
        profile.active_rate = 0.18;
    }
    auto events =
        workloads::synthesize_trace(profile, topo, {0}, duration, seed);

    auto sys = std::make_unique<sim::System>(topo, net::NetworkConfig{},
                                             seed);
    build_routing(sys->network(), "xy",
                  traffic::flows_from_trace(events));
    auto per_node =
        traffic::split_trace_by_source(events, topo.num_nodes());
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        if (!per_node[n].empty())
            sys->add_frontend(n, std::make_unique<traffic::TraceInjector>(
                                     sys->tile(n), per_node[n]));
    }

    power::PowerConfig pc;
    pc.e_buffer_write_pj *= kRouterEnergyScale;
    pc.e_buffer_read_pj *= kRouterEnergyScale;
    pc.e_xbar_per_port_pj *= kRouterEnergyScale;
    pc.e_link_pj *= kRouterEnergyScale;
    pc.leak_per_buffer_flit_mw *= 10.0;
    power::PowerModel pm(net::RouterConfig{}, 5, pc);
    power::EpochPowerSampler sampler(topo.num_nodes(), pm);

    thermal::ThermalConfig tc;
    tc.ambient_c = 45.0;
    tc.g_edge_per_missing_neighbor = 1.0 / tc.r_lateral;
    thermal::ThermalModel tm(topo, tc);
    // Start from the baseline-power steady state.
    std::vector<double> base_p(topo.num_nodes(), kCoreBaselineW);
    tm.reset(tm.steady_state(base_p)[0]);

    TraceResult out;
    const double cycle_seconds = 1e-9; // 1 GHz clock
    for (Cycle t = epoch; t <= duration; t += epoch) {
        sim::RunOptions ro;
        ro.max_cycles = t;
        sys->run(ro);
        auto snapshot = sys->collect_stats();
        auto mw = sampler.sample_mw(snapshot.per_tile, epoch);
        std::vector<double> watts(mw.size());
        for (std::size_t i = 0; i < mw.size(); ++i)
            watts[i] = kCoreBaselineW + mw[i] / 1000.0;
        tm.step(watts, static_cast<double>(epoch) * cycle_seconds *
                           /*thermal time acceleration*/ 2000.0);
        const auto &temps = tm.temperatures();
        out.max_temp.push_back(
            *std::max_element(temps.begin(), temps.end()));
    }
    double sum = 0;
    for (double v : out.max_temp) {
        sum += v;
        out.peak = std::max(out.peak, v);
    }
    out.mean = sum / static_cast<double>(out.max_temp.size());
    double lo = *std::min_element(out.max_temp.begin(),
                                  out.max_temp.end());
    out.swing = out.peak - lo;
    return out;
}

} // namespace

int
main()
{
    std::printf("# Fig 13: hottest-tile temperature over time "
                "(8x8, MC in corner, XY)\n");
    for (const char *name : {"ocean", "radix"}) {
        TraceResult r = run_thermal(name, 77);
        std::printf("trace=%s epochs=%zu mean=%.2fC peak=%.2fC "
                    "swing=%.2fC\n",
                    name, r.max_temp.size(), r.mean, r.peak, r.swing);
        std::printf("%s_series", name);
        for (std::size_t i = 0; i < r.max_temp.size(); i += 2)
            std::printf(",%.2f", r.max_temp[i]);
        std::printf("\n");
    }
    std::printf("# paper shape: OCEAN varies slowly over a narrow "
                "band; RADIX swings over many degrees with its "
                "activity phases\n");
    return 0;
}
