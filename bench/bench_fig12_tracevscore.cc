/**
 * @file
 * Fig 12: trace-driven vs integrated core+network simulation, using
 * Cannon's matrix-multiplication algorithm on message-passing MIPS
 * cores (paper IV-D).
 *
 * Method (as in the paper): the co-simulation runs the MIPS cores
 * directly against the cycle-level network. For the trace version, the
 * same program runs against an ideal single-cycle network while every
 * network transmission is logged; the log is then replayed through the
 * cycle-level network without the cores. Lacking the feedback loop
 * (cores waiting on the network), the trace version injects
 * unrealistically fast and finishes far earlier than realistically
 * possible.
 */
#include <cstdio>

#include "bench_util.h"
#include "mips/core.h"
#include "workloads/programs.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

constexpr std::uint32_t kGrid = 4;   // 16 cores
constexpr std::uint32_t kBlock = 4;  // 16x16 overall matrix
// Large per-cell data, fast computation (paper IV-D): 256-byte block
// transfers make the network wait a significant runtime share.
constexpr std::uint32_t kDataScale = 4;

struct Result
{
    double exec_cycles = 0;
    double msg_flits = 0;

    double
    injection_rate() const
    {
        return msg_flits / exec_cycles / (kGrid * kGrid);
    }
};

Result
run_cosim()
{
    mips::MipsMachineConfig cfg;
    cfg.program = workloads::cannon_program(kGrid, kBlock, kDataScale,
                                            /*scatter=*/true);
    cfg.net.link_latency = 4; // slower links: network share grows
    cfg.mem.mc_nodes = {0};
    mips::MipsMachine m(net::Topology::mesh2d(kGrid, kGrid), cfg);
    Cycle end = m.run_until_done(50000000);
    if (!m.all_halted())
        fatal("co-simulation did not finish");
    Result r;
    r.exec_cycles = static_cast<double>(end);
    return r;
}

Result
run_trace_based(double *capture_cycles)
{
    // Capture: run the app on an ideal single-cycle network.
    mips::MipsMachineConfig cfg;
    cfg.program = workloads::cannon_program(kGrid, kBlock, kDataScale,
                                            /*scatter=*/true);
    cfg.mem.mc_nodes = {0};
    cfg.ideal_network = true;
    mips::MipsMachine m(net::Topology::mesh2d(kGrid, kGrid), cfg);
    *capture_cycles = static_cast<double>(m.run_until_done(50000000));
    if (!m.all_halted())
        fatal("trace-capture run did not finish");
    auto events = m.shared().trace;

    // Replay the captured transmissions through the real network.
    net::Topology topo = net::Topology::mesh2d(kGrid, kGrid);
    net::NetworkConfig ncfg;
    ncfg.link_latency = 4;
    TraceRunOptions opts;
    opts.cycles = 50000000;
    opts.stop_when_done = true;
    auto rr = run_trace(topo, ncfg, events, opts);

    Result r;
    r.exec_cycles = static_cast<double>(rr.end_cycle);
    for (const auto &e : events)
        r.msg_flits += e.size;
    return r;
}

} // namespace

int
main()
{
    std::printf("# Fig 12: trace-driven vs core+network co-simulation "
                "(Cannon %ux%u cores, %ux%u blocks)\n", kGrid, kGrid,
                kBlock, kBlock);
    Result cosim = run_cosim();
    double capture_cycles = 0;
    Result trace = run_trace_based(&capture_cycles);
    cosim.msg_flits = trace.msg_flits; // same program, same messages
    std::printf("metric,trace_based,core_plus_network,"
                "normalized_trace_over_cosim\n");
    std::printf("avg_injection_rate,%.5f,%.5f,%.2f\n",
                trace.injection_rate(), cosim.injection_rate(),
                trace.injection_rate() / cosim.injection_rate());
    std::printf("total_execution_time,%.0f,%.0f,%.2f\n",
                trace.exec_cycles, cosim.exec_cycles,
                trace.exec_cycles / cosim.exec_cycles);
    std::printf("# ideal-network capture run finished at %.0f cycles\n",
                capture_cycles);
    std::printf("# paper shape: trace-based overestimates injection "
                "rate and finishes unrealistically early (<1.0)\n");
    return 0;
}
