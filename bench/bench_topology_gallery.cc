/**
 * @file
 * Topology gallery (ISSUE 10): direct vs indirect geometries at
 * matched *host* counts, under the same offered load.
 *
 * A mesh spends every node on both switching and injection; a fat
 * tree or dragonfly buys path diversity (and, for the dragonfly, low
 * diameter) with dedicated switch-only transit nodes. The gallery
 * quantifies what that costs the simulator: per-geometry simulation
 * throughput (kcycles/s of wall time — the fat tree simulates 3x the
 * nodes of the equal-host mesh) and what it buys the workload
 * (delivered flits within a fixed horizon under uniform and transpose
 * traffic).
 *
 * Geometries are matched at 16 hosts in --quick mode (mesh 4x4,
 * fat tree h=2 k=4, dragonfly 4x2x2) and 64 hosts in full mode
 * (mesh 8x8, fat tree h=3 k=4, dragonfly 8x4x2). Each runs its
 * canonical routing scheme: XY on the mesh, up/down on the fat tree,
 * minimal on the dragonfly.
 *
 * Row semantics for the perf-regression gate
 * (scripts/check_bench_regression.py):
 *  - `<topo>_<pattern>_kcycles_per_s` — best-of-3 wall-rate rows,
 *    gated at the usual 15%;
 *  - `<topo>_<pattern>_flits_delivered` — deterministic results
 *    anchor (cycle-accurate, single-thread): any drift means the
 *    simulation changed, not the machine.
 *
 * --quick runs the CI-smoke subset with unchanged row names;
 * --json=PATH feeds the perf-regression harness.
 */
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "traffic/patterns.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

JsonReport report("bench_topology_gallery");

/** Synthetic system over the topology's hosts only: patterns run on
 *  host indices and frontends skip switch-only nodes, so direct and
 *  indirect geometries see the same per-host offered load. */
std::unique_ptr<sim::System>
make_gallery_system(const net::Topology &topo, const char *scheme,
                    const char *pattern_name, double rate,
                    std::uint32_t packet_size, std::uint64_t seed)
{
    auto sys = std::make_unique<sim::System>(topo, net::NetworkConfig{},
                                             seed);
    const std::vector<NodeId> hosts = topo.hosts();
    auto pattern = traffic::pattern_over_hosts(pattern_name, hosts);
    auto flows = std::strcmp(pattern_name, "uniform") == 0
                     ? traffic::flows_all_pairs(hosts)
                     : traffic::flows_for_pattern(hosts, pattern);
    build_routing(sys->network(), scheme, flows);
    for (NodeId n : hosts) {
        traffic::SyntheticConfig sc;
        sc.pattern = pattern;
        sc.packet_size = packet_size;
        sc.rate = rate;
        sys->add_frontend(n, std::make_unique<traffic::SyntheticInjector>(
                                 sys->tile(n), sc));
    }
    // One-time table compilation stays outside the timed section.
    sys->freeze_tables();
    return sys;
}

struct Sample
{
    double wall_s = 0.0;
    std::uint64_t delivered = 0;
};

Sample
run_one(const net::Topology &topo, const char *scheme,
        const char *pattern, double rate, Cycle cycles)
{
    auto sys = make_gallery_system(topo, scheme, pattern, rate,
                                   /*packet_size=*/4, /*seed=*/42);
    sim::CycleAccurateSync policy;
    sim::EngineOptions opts;
    opts.max_cycles = cycles;
    opts.schedule = sim::Schedule::Poll;
    Sample out;
    out.wall_s = wall_seconds([&] { sys->run(policy, opts, 1); });
    out.delivered = sys->collect_stats().total.flits_delivered;
    return out;
}

void
gallery_row(const net::Topology &topo, const char *scheme,
            const char *pattern, double rate, Cycle cycles)
{
    const Sample best = best_of_3(
        [&] {
            Sample s = run_one(topo, scheme, pattern, rate, cycles);
            return s;
        },
        [](const Sample &s) { return -s.wall_s; });
    const double kcycles_per_s =
        static_cast<double>(cycles) / best.wall_s / 1e3;
    std::printf("%s,%u,%u,%s,%s,%.2f,%lu,%lu,%.3f,%.1f\n", //
                topo.name().c_str(), topo.num_nodes(), topo.num_hosts(),
                scheme, pattern, rate,
                static_cast<unsigned long>(cycles),
                static_cast<unsigned long>(best.delivered), best.wall_s,
                kcycles_per_s);
    char name[96];
    std::snprintf(name, sizeof name, "%s_%s_kcycles_per_s",
                  topo.name().c_str(), pattern);
    report.higher_is_better(name, kcycles_per_s);
    std::snprintf(name, sizeof name, "%s_%s_flits_delivered",
                  topo.name().c_str(), pattern);
    report.higher_is_better(name,
                            static_cast<double>(best.delivered));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = BenchCli::parse(argc, argv);

    std::printf("# Topology gallery: geometries at matched host "
                "counts (cycle-accurate, 1 thread)\n");
    std::printf("topology,nodes,hosts,scheme,pattern,rate,cycles,"
                "flits_delivered,wall_s,kcycles_per_s\n");

    struct Entry
    {
        net::Topology topo;
        const char *scheme;
    };
    std::vector<Entry> gallery;
    if (cli.quick) {
        gallery.push_back({net::Topology::mesh2d(4, 4), "xy"});
        gallery.push_back({net::Topology::fat_tree(2, 4), "updown"});
        gallery.push_back(
            {net::Topology::dragonfly(4, 2, 2), "dragonfly"});
    } else {
        gallery.push_back({net::Topology::mesh2d(8, 8), "xy"});
        gallery.push_back({net::Topology::fat_tree(3, 4), "updown"});
        gallery.push_back(
            {net::Topology::dragonfly(8, 4, 2), "dragonfly"});
    }
    // Horizons sized so even the fastest (mesh) wall stays well above
    // the regression checker's useful range — sub-quarter-second
    // timings jitter beyond the 15% gate.
    const Cycle cycles = cli.quick ? 60000 : 40000;
    for (const auto &e : gallery)
        for (const char *pattern : {"uniform", "transpose"})
            gallery_row(e.topo, e.scheme, pattern, /*rate=*/0.1,
                        cycles);

    std::printf("# kcycles_per_s = simulated cycles per wall second; "
                "flits_delivered is deterministic (results anchor)\n");
    report.write_if_requested(cli);
    return 0;
}
