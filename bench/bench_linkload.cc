/**
 * @file
 * Section IV-A link-load census: with all-to-all traffic and one flow
 * per source/destination pair under dimension-ordered (XY) routing,
 * the most encumbered link of an n x n mesh carries n^3/4 flows —
 * 128 on an 8x8 mesh vs 8,192 on the 32x32 mesh of a 1024-core chip.
 * This bench enumerates every XY path and reports the per-link flow
 * counts, confirming the paper's scaling argument.
 */
#include <algorithm>
#include <cstdio>
#include <map>

#include "net/routing/paths.h"
#include "net/topology.h"

using namespace hornet;

namespace {

struct LinkLoad
{
    std::uint64_t max_flows = 0;
    double avg_flows = 0.0;
    NodeId max_a = 0, max_b = 0;
};

LinkLoad
census(std::uint32_t side)
{
    net::Topology topo = net::Topology::mesh2d(side, side);
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> load;
    for (NodeId s = 0; s < topo.num_nodes(); ++s) {
        for (NodeId d = 0; d < topo.num_nodes(); ++d) {
            if (s == d)
                continue;
            auto path = net::routing::xy_path(topo, s, d);
            for (std::size_t i = 0; i + 1 < path.size(); ++i)
                ++load[{path[i], path[i + 1]}];
        }
    }
    LinkLoad out;
    std::uint64_t total = 0;
    for (const auto &[link, flows] : load) {
        total += flows;
        if (flows > out.max_flows) {
            out.max_flows = flows;
            out.max_a = link.first;
            out.max_b = link.second;
        }
    }
    out.avg_flows = static_cast<double>(total) /
                    static_cast<double>(load.size());
    return out;
}

} // namespace

int
main()
{
    std::printf("# Section IV-A: flows per link, all-to-all XY/DOR\n");
    std::printf("mesh,max_flows_per_link,expected_n3_over_4,avg_flows,"
                "worst_link\n");
    for (std::uint32_t side : {8u, 16u, 32u}) {
        LinkLoad ll = census(side);
        std::uint64_t expected =
            static_cast<std::uint64_t>(side) * side * side / 4;
        std::printf("%ux%u,%llu,%llu,%.1f,%u->%u\n", side, side,
                    static_cast<unsigned long long>(ll.max_flows),
                    static_cast<unsigned long long>(expected),
                    ll.avg_flows, ll.max_a, ll.max_b);
    }
    std::printf("# paper: 128 flows on 8x8 vs 8192 on 32x32 (64x)\n");
    return 0;
}
