/**
 * @file
 * Fig 9: in-network latency for different VC buffer configurations on
 * SWAPTIONS-like and RADIX-like traces, under dynamic VCA and EDVCA.
 *
 * The paper's counterintuitive result: doubling the number of VCs
 * from 2 to 4 while keeping each VC at 8 flits *increases* latency in
 * a congested network (total buffering doubles, so flits queue behind
 * more in-network traffic), while doubling VCs at constant total
 * buffer (4 VCs x 4 flits) decreases it.
 */
#include <cstdio>

#include "bench_util.h"
#include "workloads/splash.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

double
run_config(const char *trace_name, std::uint32_t vcs,
           std::uint32_t vc_depth, net::VcaMode mode)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    auto profile = workloads::splash_profile(trace_name);
    // "Relatively congested" (paper): heavy queueing without driving
    // the corner-MC links into deep saturation.
    if (profile.name == "radix")
        profile.active_rate = 0.17;
    auto events =
        workloads::synthesize_trace(profile, topo, {0}, 60000, 99);
    net::NetworkConfig cfg;
    cfg.router.net_vcs = vcs;
    cfg.router.net_vc_capacity = vc_depth;
    cfg.router.vca_mode = mode;
    TraceRunOptions opts;
    opts.cycles = 90000;
    opts.stop_when_done = true;
    auto r = run_trace(topo, cfg, events, opts);
    return r.stats.avg_packet_latency();
}

} // namespace

int
main()
{
    std::printf("# Fig 9: avg packet latency by VC configuration "
                "(8x8)\n");
    std::printf("trace,config,vca,avg_packet_latency\n");
    struct Cfg
    {
        const char *name;
        std::uint32_t vcs, depth;
    };
    const Cfg cfgs[] = {
        {"2VCx8", 2, 8}, {"4VCx8", 4, 8}, {"4VCx4", 4, 4}};
    for (const char *trace : {"swaptions", "radix"}) {
        for (const auto &c : cfgs) {
            for (auto mode :
                 {net::VcaMode::Dynamic, net::VcaMode::Edvca}) {
                double lat = run_config(trace, c.vcs, c.depth, mode);
                std::printf("%s,%s,%s,%.2f\n", trace, c.name,
                            net::to_string(mode), lat);
            }
        }
    }
    std::printf("# paper shape (congested RADIX): 4VCx8 > 2VCx8 > "
                "4VCx4\n");
    return 0;
}
