/**
 * @file
 * Fig 9: in-network latency for different VC buffer configurations on
 * SWAPTIONS-like and RADIX-like traces, under dynamic VCA and EDVCA.
 *
 * The paper's counterintuitive result: doubling the number of VCs
 * from 2 to 4 while keeping each VC at 8 flits *increases* latency in
 * a congested network (total buffering doubles, so flits queue behind
 * more in-network traffic), while doubling VCs at constant total
 * buffer (4 VCs x 4 flits) decreases it.
 *
 * The 12-point grid goes through the sweep engine: each grid point is
 * a Job on its own SystemBlueprint (the VC configuration is part of
 * the immutable half), each trace is synthesized once and shared by
 * all its points' frontend factories, and the points run concurrently
 * on the JobEngine's workers instead of one after another.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "sim/job_engine.h"
#include "sim/system_blueprint.h"
#include "traffic/trace.h"
#include "workloads/splash.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

/** Blueprint for one VC configuration of the 8x8 trace-driven mesh;
 *  the factory replays the shared per-node trace slices. */
std::shared_ptr<sim::SystemBlueprint>
make_trace_blueprint(const net::Topology &topo, const net::NetworkConfig &cfg,
                     const std::vector<traffic::TraceEvent> &events)
{
    auto bp = std::make_shared<sim::SystemBlueprint>(topo, cfg);
    build_routing(bp->network(), "xy", traffic::flows_from_trace(events));
    auto per_node = std::make_shared<
        const std::vector<std::vector<traffic::TraceEvent>>>(
        traffic::split_trace_by_source(events, topo.num_nodes()));
    bp->set_frontend_factory([per_node](sim::System &sys, std::uint64_t) {
        for (NodeId n = 0; n < sys.num_tiles(); ++n) {
            if (!(*per_node)[n].empty())
                sys.add_frontend(
                    n, std::make_unique<traffic::TraceInjector>(
                           sys.tile(n), (*per_node)[n]));
        }
    });
    bp->freeze();
    return bp;
}

} // namespace

int
main()
{
    std::printf("# Fig 9: avg packet latency by VC configuration "
                "(8x8)\n");
    std::printf("trace,config,vca,avg_packet_latency\n");
    struct Cfg
    {
        const char *name;
        std::uint32_t vcs, depth;
    };
    const Cfg cfgs[] = {
        {"2VCx8", 2, 8}, {"4VCx8", 4, 8}, {"4VCx4", 4, 4}};
    const net::VcaMode modes[] = {net::VcaMode::Dynamic,
                                  net::VcaMode::Edvca};
    const net::Topology topo = net::Topology::mesh2d(8, 8);

    sim::RunOptions ro;
    ro.max_cycles = 90000;
    ro.stop_when_done = true;

    struct Point
    {
        const char *trace;
        const char *cfg_name;
        net::VcaMode mode;
    };
    std::vector<Point> points;

    sim::JobEngine engine;
    for (const char *trace : {"swaptions", "radix"}) {
        auto profile = workloads::splash_profile(trace);
        // "Relatively congested" (paper): heavy queueing without
        // driving the corner-MC links into deep saturation.
        if (profile.name == "radix")
            profile.active_rate = 0.17;
        const auto events =
            workloads::synthesize_trace(profile, topo, {0}, 60000, 99);
        for (const auto &c : cfgs) {
            for (auto mode : modes) {
                net::NetworkConfig cfg;
                cfg.router.net_vcs = c.vcs;
                cfg.router.net_vc_capacity = c.depth;
                cfg.router.vca_mode = mode;
                sim::Job job;
                job.blueprint = make_trace_blueprint(topo, cfg, events);
                job.run = ro;
                engine.submit(std::move(job));
                points.push_back({trace, c.name, mode});
            }
        }
    }
    const auto results = engine.finish();

    for (std::size_t i = 0; i < results.size(); ++i)
        std::printf("%s,%s,%s,%.2f\n", points[i].trace,
                    points[i].cfg_name, net::to_string(points[i].mode),
                    results[i].stats.avg_packet_latency());
    std::printf("# paper shape (congested RADIX): 4VCx8 > 2VCx8 > "
                "4VCx4\n");
    return 0;
}
