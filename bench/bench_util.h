/**
 * @file
 * Shared helpers for the per-figure benchmark binaries.
 *
 * Every bench prints machine-readable CSV-ish rows plus a short
 * human-readable summary, and is sized to run in seconds-to-minutes on
 * a single host core (the paper's absolute numbers came from a 24-HT
 * Xeon testbed; see docs/BENCHMARKS.md for the mapping).
 */
#ifndef HORNET_BENCH_BENCH_UTIL_H
#define HORNET_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "net/routing/builders.h"
#include "net/topology.h"
#include "net/vca_builders.h"
#include "sim/system.h"
#include "traffic/flows.h"
#include "traffic/synthetic.h"
#include "traffic/trace.h"

namespace hornet::benchutil {

/** Wall-clock seconds of a callable. */
template <typename Fn>
double
wall_seconds(Fn &&fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Install routing tables by scheme name ("xy", "o1turn", "romm",
 * "valiant") plus the matching phase-split VCA sets for multi-phase
 * schemes (required for their deadlock freedom).
 */
inline void
build_routing(net::Network &net, const std::string &scheme,
              const std::vector<net::FlowSpec> &flows)
{
    if (scheme == "xy") {
        net::routing::build_xy(net, flows);
        return;
    }
    if (scheme == "o1turn") {
        net::routing::build_o1turn(net, flows);
        net::vca::build_phase_split(net);
        return;
    }
    if (scheme == "romm") {
        net::routing::build_romm(net, flows);
        net::vca::build_phase_split(net);
        return;
    }
    if (scheme == "valiant") {
        net::routing::build_valiant(net, flows);
        net::vca::build_phase_split(net);
        return;
    }
    fatal("unknown routing scheme: " + scheme);
}

/** Result of one simulation run. */
struct RunResult
{
    SystemStats stats;
    Cycle end_cycle = 0;
    double wall_s = 0.0;
};

/** Options for run_trace(). */
struct TraceRunOptions
{
    Cycle cycles = 100000;
    Cycle warmup = 0;
    unsigned threads = 1;
    std::uint32_t sync_period = 1;
    bool fast_forward = false;
    bool stop_when_done = false;
    std::uint64_t seed = 1;
    std::string routing = "xy";
};

/** Build a system from a whole-chip trace and run it. */
inline RunResult
run_trace(const net::Topology &topo, const net::NetworkConfig &cfg,
          const std::vector<traffic::TraceEvent> &events,
          const TraceRunOptions &opts)
{
    auto sys = std::make_unique<sim::System>(topo, cfg, opts.seed);
    build_routing(sys->network(), opts.routing,
                  traffic::flows_from_trace(events));
    auto per_node =
        traffic::split_trace_by_source(events, topo.num_nodes());
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        if (!per_node[n].empty())
            sys->add_frontend(n, std::make_unique<traffic::TraceInjector>(
                                     sys->tile(n), per_node[n]));
    }
    RunResult out;
    out.wall_s = wall_seconds([&] {
        sim::RunOptions ro;
        ro.threads = opts.threads;
        ro.sync_period = opts.sync_period;
        ro.fast_forward = opts.fast_forward;
        ro.stop_when_done = opts.stop_when_done;
        if (opts.warmup != 0) {
            ro.max_cycles = opts.warmup;
            sys->run(ro);
            sys->reset_stats();
        }
        ro.max_cycles = opts.cycles;
        out.end_cycle = sys->run(ro);
    });
    out.stats = sys->collect_stats();
    return out;
}

/** Build a synthetic-pattern system (one injector per node). */
inline std::unique_ptr<sim::System>
make_synthetic(const net::Topology &topo, const net::NetworkConfig &cfg,
               const std::string &pattern_name, double rate,
               std::uint32_t packet_size, std::uint64_t seed,
               const std::string &routing = "xy",
               Cycle burst_period = 0, std::uint32_t burst_size = 1)
{
    auto sys = std::make_unique<sim::System>(topo, cfg, seed);
    auto pattern =
        traffic::pattern_by_name(pattern_name, topo.num_nodes());
    auto flows = pattern_name == "uniform"
                     ? traffic::flows_all_pairs(topo.num_nodes())
                     : traffic::flows_for_pattern(topo.num_nodes(),
                                                  pattern);
    build_routing(sys->network(), routing, flows);
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        traffic::SyntheticConfig sc;
        sc.pattern = pattern;
        sc.packet_size = packet_size;
        sc.rate = rate;
        sc.burst_period = burst_period;
        sc.burst_size = burst_size;
        sys->add_frontend(n, std::make_unique<traffic::SyntheticInjector>(
                                 sys->tile(n), sc));
    }
    return sys;
}

} // namespace hornet::benchutil

#endif // HORNET_BENCH_BENCH_UTIL_H
