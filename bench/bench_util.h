/**
 * @file
 * Shared helpers for the per-figure benchmark binaries.
 *
 * Every bench prints machine-readable CSV-ish rows plus a short
 * human-readable summary, and is sized to run in seconds-to-minutes on
 * a single host core (the paper's absolute numbers came from a 24-HT
 * Xeon testbed; see docs/BENCHMARKS.md for the mapping).
 */
#ifndef HORNET_BENCH_BENCH_UTIL_H
#define HORNET_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/log.h"
#include "net/routing/builders.h"
#include "net/topology.h"
#include "net/vca_builders.h"
#include "sim/system.h"
#include "traffic/flows.h"
#include "traffic/synthetic.h"
#include "traffic/trace.h"

namespace hornet::benchutil {

/** Wall-clock seconds of a callable. */
template <typename Fn>
double
wall_seconds(Fn &&fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Run @p measure three times and keep the sample whose @p better_key
 * is largest (negate a wall time to keep the fastest run). Host
 * interference can only degrade a short measurement, never improve
 * it, so best-of-N is the stable estimate the perf-regression gate's
 * 15% threshold needs; every row that feeds the gate goes through
 * this.
 */
template <typename Fn, typename Key>
auto
best_of_3(Fn &&measure, Key &&better_key)
{
    auto best = measure();
    for (int i = 1; i < 3; ++i) {
        auto sample = measure();
        if (better_key(sample) > better_key(best))
            best = sample;
    }
    return best;
}

/**
 * Common bench command line, shared by every binary that participates
 * in the perf-regression harness (scripts/check_bench_regression.py):
 *
 *   --quick        run the CI-sized smoke subset only (small meshes,
 *                  shortened loops); row *names* are unchanged so a
 *                  quick run compares against a quick baseline
 *   --json=PATH    additionally write the named rows as JSON for the
 *                  baseline comparison (see JsonReport)
 *
 * Unknown arguments abort: a typo must not silently run the full
 * sweep in CI.
 */
struct BenchCli
{
    /** CI smoke subset (small meshes, shortened loops). */
    bool quick = false;
    /** Destination of the JSON row report; empty = no report. */
    std::string json_path;

    /** Parse @p argv; fatal() on unknown arguments. */
    static BenchCli
    parse(int argc, char **argv)
    {
        BenchCli cli;
        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            if (std::strcmp(a, "--quick") == 0)
                cli.quick = true;
            else if (std::strncmp(a, "--json=", 7) == 0)
                cli.json_path = a + 7;
            else
                fatal(std::string("unknown bench argument: ") + a);
        }
        return cli;
    }
};

/**
 * Named numeric bench rows, writable as JSON for the perf-regression
 * harness. Each row carries the direction in which bigger is better
 * ("higher" for throughputs, "lower" for wall times), so the checker
 * needs no out-of-band knowledge; the report carries the run mode
 * ("quick" or "full") because the two modes share row names while
 * measuring differently sized workloads — the checker refuses to
 * compare across modes. The output is a single object:
 *
 * ```json
 * {"bench": "<name>", "mode": "quick", "rows": [
 *   {"name": "...", "value": 1.23, "better": "higher"}, ...]}
 * ```
 */
class JsonReport
{
  public:
    /** @param bench_name identifies the binary in the report. */
    explicit JsonReport(std::string bench_name)
        : bench_(std::move(bench_name))
    {}

    /** Record a throughput-style row (bigger is better). */
    void
    higher_is_better(const std::string &name, double value)
    {
        rows_.push_back({name, value, true});
    }

    /** Record a wall-time-style row (smaller is better). */
    void
    lower_is_better(const std::string &name, double value)
    {
        rows_.push_back({name, value, false});
    }

    /** Write the report to @p path, tagged with the run mode of
     *  @p cli; fatal() when unwritable. */
    void
    write(const std::string &path, const BenchCli &cli) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            fatal("cannot write bench report: " + path);
        std::fprintf(f, "{\"bench\": \"%s\", \"mode\": \"%s\", \"rows\": [",
                     bench_.c_str(), cli.quick ? "quick" : "full");
        for (std::size_t i = 0; i < rows_.size(); ++i)
            std::fprintf(f,
                         "%s\n  {\"name\": \"%s\", \"value\": %.6g, "
                         "\"better\": \"%s\"}",
                         i ? "," : "", rows_[i].name.c_str(),
                         rows_[i].value,
                         rows_[i].higher ? "higher" : "lower");
        std::fprintf(f, "\n]}\n");
        std::fclose(f);
    }

    /** Write to @p cli's json_path when one was given. */
    void
    write_if_requested(const BenchCli &cli) const
    {
        if (!cli.json_path.empty())
            write(cli.json_path, cli);
    }

  private:
    struct Row
    {
        std::string name;
        double value;
        bool higher;
    };
    std::string bench_;
    std::vector<Row> rows_;
};

/**
 * Install routing tables by scheme name ("xy", "o1turn", "romm",
 * "valiant", "shortest", "updown", "dragonfly", "dragonfly-valiant")
 * plus the matching phase-split VCA sets for multi-phase schemes
 * (required for their deadlock freedom).
 */
inline void
build_routing(net::Network &net, const std::string &scheme,
              const std::vector<net::FlowSpec> &flows)
{
    if (scheme == "xy") {
        net::routing::build_xy(net, flows);
        return;
    }
    if (scheme == "o1turn") {
        net::routing::build_o1turn(net, flows);
        net::vca::build_phase_split(net);
        return;
    }
    if (scheme == "romm") {
        net::routing::build_romm(net, flows);
        net::vca::build_phase_split(net);
        return;
    }
    if (scheme == "valiant") {
        net::routing::build_valiant(net, flows);
        net::vca::build_phase_split(net);
        return;
    }
    if (scheme == "shortest") {
        net::routing::build_shortest(net, flows);
        return;
    }
    if (scheme == "updown") {
        net::routing::build_updown(net, flows);
        return;
    }
    if (scheme == "dragonfly") {
        net::routing::build_dragonfly_minimal(net, flows);
        return;
    }
    if (scheme == "dragonfly-valiant") {
        net::routing::build_dragonfly_valiant(net, flows);
        net::vca::build_phase_split(net);
        return;
    }
    fatal("unknown routing scheme: " + scheme);
}

/** Result of one simulation run. */
struct RunResult
{
    SystemStats stats;
    Cycle end_cycle = 0;
    double wall_s = 0.0;
};

/** Options for run_trace(). */
struct TraceRunOptions
{
    Cycle cycles = 100000;
    Cycle warmup = 0;
    unsigned threads = 1;
    std::uint32_t sync_period = 1;
    bool fast_forward = false;
    bool stop_when_done = false;
    std::uint64_t seed = 1;
    std::string routing = "xy";
};

/** Build a system from a whole-chip trace and run it. */
inline RunResult
run_trace(const net::Topology &topo, const net::NetworkConfig &cfg,
          const std::vector<traffic::TraceEvent> &events,
          const TraceRunOptions &opts)
{
    auto sys = std::make_unique<sim::System>(topo, cfg, opts.seed);
    build_routing(sys->network(), opts.routing,
                  traffic::flows_from_trace(events));
    auto per_node =
        traffic::split_trace_by_source(events, topo.num_nodes());
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        if (!per_node[n].empty())
            sys->add_frontend(n, std::make_unique<traffic::TraceInjector>(
                                     sys->tile(n), per_node[n]));
    }
    RunResult out;
    // Freeze the lookup tables outside the timed section (one-time
    // construction work; see make_synthetic).
    sys->freeze_tables();
    out.wall_s = wall_seconds([&] {
        sim::RunOptions ro;
        ro.threads = opts.threads;
        ro.sync_period = opts.sync_period;
        ro.fast_forward = opts.fast_forward;
        ro.stop_when_done = opts.stop_when_done;
        if (opts.warmup != 0) {
            ro.max_cycles = opts.warmup;
            sys->run(ro);
            sys->reset_stats();
        }
        ro.max_cycles = opts.cycles;
        out.end_cycle = sys->run(ro);
    });
    out.stats = sys->collect_stats();
    return out;
}

/** Build a synthetic-pattern system (one injector per node). */
inline std::unique_ptr<sim::System>
make_synthetic(const net::Topology &topo, const net::NetworkConfig &cfg,
               const std::string &pattern_name, double rate,
               std::uint32_t packet_size, std::uint64_t seed,
               const std::string &routing = "xy",
               Cycle burst_period = 0, std::uint32_t burst_size = 1)
{
    auto sys = std::make_unique<sim::System>(topo, cfg, seed);
    auto pattern =
        traffic::pattern_by_name(pattern_name, topo.num_nodes());
    auto flows = pattern_name == "uniform"
                     ? traffic::flows_all_pairs(topo.num_nodes())
                     : traffic::flows_for_pattern(topo.num_nodes(),
                                                  pattern);
    build_routing(sys->network(), routing, flows);
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        traffic::SyntheticConfig sc;
        sc.pattern = pattern;
        sc.packet_size = packet_size;
        sc.rate = rate;
        sc.burst_period = burst_period;
        sc.burst_size = burst_size;
        sys->add_frontend(n, std::make_unique<traffic::SyntheticInjector>(
                                 sys->tile(n), sc));
    }
    // Compile the frozen lookup tables here, at construction time:
    // run() would otherwise do it lazily inside the first timed
    // section, charging one-time table compilation (substantial for
    // all-pairs flow sets) to whatever wall_seconds wraps that run.
    sys->freeze_tables();
    return sys;
}

} // namespace hornet::benchutil

#endif // HORNET_BENCH_BENCH_UTIL_H
