/**
 * @file
 * Event-driven shard scheduling: O(active tiles) cycles vs the
 * polling scheduler's O(all tiles), extending the Fig 7 fast-forward
 * methodology from "skip globally idle stretches" to "skip every idle
 * tile, every cycle" — and, with the event-fine scheduler, to "skip
 * every idle *component* inside every awake tile".
 *
 * The single-thread sweep crosses injection rate x mesh size x
 * scheduler under cycle-accurate sync with fast-forwarding off, so the
 * entire difference comes from per-tile/per-component sleeping. At low
 * rates most of the tile x cycle grid is idle: the event scheduler's
 * cost tracks the handful of active tiles, and event-fine shrinks the
 * cost of those active tiles again by visiting only router stages with
 * occupied VCs. At saturation every tile is busy every cycle and both
 * event schedulers must stay within noise of polling (their wake
 * bookkeeping is the only overhead). A bursty row (long fully-drained
 * gaps, the Fig 7a regime) shows the trace-replay case where sleeping
 * wins even without fast-forward.
 *
 * The cross-thread section then re-runs the low-rate lockstep config
 * at 2 and 4 shards: every cross-shard push wakes the consumer tile
 * through the Shard wake mailbox, and lockstep windows drain it at
 * every cycle barrier, so these rows measure the mailbox hand-off
 * itself (mutex mailbox before ISSUE 5, lock-free MPSC ring after; see
 * docs/BENCHMARKS.md). Results must stay bitwise identical across
 * schedulers and thread counts (lockstep windows).
 *
 * Acceptance targets: >= 2x speedup for event over poll at rates
 * <= 0.05 flits/node/cycle on a 16x16 mesh (ISSUE 3); >= 2x speedup
 * for event-fine over event on the rate-0.01 rows at 16x16 and 32x32
 * (ISSUE 7, gated via the fine_over_event ratio rows); <= ~5%
 * regression at saturation.
 *
 * --quick runs the CI-smoke subset (8x8 mesh, shortened horizons)
 * with unchanged row names; --json=PATH feeds the perf-regression
 * harness (scripts/check_bench_regression.py).
 */
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

JsonReport report("bench_event_driven");

struct Sample
{
    double wall_s = 0.0;
    double skipped_frac = 0.0;
    std::uint64_t delivered = 0;
};

Sample
run_one(std::uint32_t side, const char *pattern, double rate,
        Cycle burst_period, sim::Schedule sched, Cycle cycles,
        unsigned threads)
{
    net::Topology topo = net::Topology::mesh2d(side, side);
    auto sys = make_synthetic(topo, {}, pattern, rate, 8, 17, "xy",
                              burst_period,
                              /*burst_size=*/burst_period ? 2 : 1);
    sim::CycleAccurateSync policy;
    sim::EngineOptions opts;
    opts.max_cycles = cycles;
    opts.schedule = sched;
    Sample out;
    out.wall_s = wall_seconds([&] { sys->run(policy, opts, threads); });
    auto stats = sys->collect_stats();
    const std::uint64_t grid =
        stats.tile_cycles_run + stats.tile_cycles_skipped;
    out.skipped_frac =
        grid ? static_cast<double>(stats.tile_cycles_skipped) /
                   static_cast<double>(grid)
             : 0.0;
    out.delivered = stats.total.flits_delivered;
    return out;
}

void
sweep_row(std::uint32_t side, const char *pattern, double rate,
          Cycle burst_period, Cycle cycles, bool gate_fine_ratio = false)
{
    Sample poll = run_one(side, pattern, rate, burst_period,
                          sim::Schedule::Poll, cycles, /*threads=*/1);
    Sample event = run_one(side, pattern, rate, burst_period,
                           sim::Schedule::Event, cycles, /*threads=*/1);
    Sample fine = run_one(side, pattern, rate, burst_period,
                          sim::Schedule::EventFine, cycles,
                          /*threads=*/1);
    if (poll.delivered != event.delivered ||
        poll.delivered != fine.delivered)
        fatal("scheduler changed results: delivered flits diverged");
    // us/flit: wall cost per delivered flit under event-fine — the
    // flatter this stays as rate drops, the closer the scheduler is to
    // true O(events) cost.
    const double us_per_flit =
        fine.delivered ? 1e6 * fine.wall_s /
                             static_cast<double>(fine.delivered)
                       : 0.0;
    std::printf(
        "%ux%u,%s,%s,%.3f,%lu,%.3f,%.3f,%.3f,%.1f%%,%.2f,%.2f,%.2f\n",
        side, side, pattern, burst_period ? "burst" : "rate", rate,
        static_cast<unsigned long>(burst_period), poll.wall_s,
        event.wall_s, fine.wall_s, 100.0 * event.skipped_frac,
        poll.wall_s / event.wall_s, event.wall_s / fine.wall_s,
        us_per_flit);
    char name[96];
    std::snprintf(name, sizeof name, "%ux%u_%s_%s%.2f_event_wall_s",
                  side, side, pattern, burst_period ? "burst" : "r",
                  rate);
    report.lower_is_better(name, event.wall_s);
    std::snprintf(name, sizeof name, "%ux%u_%s_%s%.2f_fine_wall_s",
                  side, side, pattern, burst_period ? "burst" : "r",
                  rate);
    report.lower_is_better(name, fine.wall_s);
    if (gate_fine_ratio) {
        // The ISSUE 7 acceptance ratio: event-fine speedup over the
        // tile-granularity event scheduler on the low-rate rows. A
        // ratio of two sub-second walls jitters far beyond either
        // wall row, so gate on best-of-3 per scheduler (timing noise
        // is one-sided).
        double ev = event.wall_s;
        double fi = fine.wall_s;
        for (int rep = 0; rep < 2; ++rep) {
            ev = std::min(ev, run_one(side, pattern, rate, burst_period,
                                      sim::Schedule::Event, cycles,
                                      /*threads=*/1)
                                  .wall_s);
            fi = std::min(fi, run_one(side, pattern, rate, burst_period,
                                      sim::Schedule::EventFine, cycles,
                                      /*threads=*/1)
                                  .wall_s);
        }
        std::snprintf(name, sizeof name,
                      "%ux%u_%s_r%.2f_fine_over_event", side, side,
                      pattern, rate);
        report.higher_is_better(name, ev / fi);
    }
}

/**
 * Cross-thread lockstep rows: the wake-mailbox hand-off. Lockstep
 * windows keep the result bitwise identical at every thread count and
 * drain each shard's mailbox at every cycle barrier, so the event rows
 * pay one mailbox round-trip per cross-shard push.
 */
void
cross_thread_row(std::uint32_t side, double rate, Cycle cycles,
                 unsigned threads, std::uint64_t expect_delivered)
{
    // Fastest of three runs per scheduler (benchutil::best_of_3):
    // these are the mailbox regression canaries, and a single sample
    // of a sub-second multi-thread run jitters beyond the checker's
    // 15% gate. Bitwise identity is asserted on every repetition.
    auto fastest = [&](sim::Schedule sched) {
        return best_of_3(
            [&] {
                Sample s = run_one(side, "uniform", rate, 0, sched,
                                   cycles, threads);
                if (s.delivered != expect_delivered)
                    fatal("lockstep cross-thread run changed results");
                return s;
            },
            [](const Sample &s) { return -s.wall_s; });
    };
    const Sample poll = fastest(sim::Schedule::Poll);
    const Sample event = fastest(sim::Schedule::Event);
    const Sample fine = fastest(sim::Schedule::EventFine);
    std::printf(
        "%ux%u,uniform,xthread%u,%.3f,0,%.3f,%.3f,%.3f,%.1f%%,%.2f,"
        "%.2f,-\n",
        side, side, threads, rate, poll.wall_s, event.wall_s,
        fine.wall_s, 100.0 * event.skipped_frac,
        poll.wall_s / event.wall_s, event.wall_s / fine.wall_s);
    char name[96];
    std::snprintf(name, sizeof name, "xthread_t%u_event_wall_s",
                  threads);
    report.lower_is_better(name, event.wall_s);
    std::snprintf(name, sizeof name, "xthread_t%u_fine_wall_s",
                  threads);
    report.lower_is_better(name, fine.wall_s);
    std::snprintf(name, sizeof name, "xthread_t%u_poll_wall_s", threads);
    report.lower_is_better(name, poll.wall_s);
}

/**
 * Giant-mesh footprint row (ISSUE 6): bytes of construction-arena
 * storage per tile, from SystemStats. Deterministic — it measures the
 * layout, not the clock — so the regression gate holds it exactly.
 * One placement group pins the number regardless of the host's core
 * count (per-group chunk rounding would otherwise vary it).
 */
void
footprint_row(std::uint32_t side)
{
    net::Topology topo = net::Topology::mesh2d(side, side);
    sim::SystemLayout layout;
    layout.placement_groups = 1;
    layout.pin = common::PinMode::None;
    sim::System sys(topo, {}, /*seed=*/1, layout);
    const SystemStats stats = sys.collect_stats();
    std::printf("# %ux%u arena footprint: %.0f bytes/tile "
                "(%llu used, %llu reserved)\n",
                side, side, stats.arena_bytes_per_tile,
                static_cast<unsigned long long>(stats.arena_bytes_used),
                static_cast<unsigned long long>(
                    stats.arena_bytes_reserved));
    char name[96];
    std::snprintf(name, sizeof name, "%ux%u_arena_bytes_per_tile",
                  side, side);
    report.lower_is_better(name, stats.arena_bytes_per_tile);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = BenchCli::parse(argc, argv);

    std::printf("# Event-driven vs polling shard scheduling "
                "(cycle-accurate, no fast-forward)\n");
    std::printf("mesh,pattern,mode,rate,burst_period,poll_s,event_s,"
                "fine_s,tile_cycles_slept,event_speedup,fine_speedup,"
                "fine_us_per_flit\n");

    // Injection-rate sweep: O(active) scaling against offered load.
    // Two patterns bracket the busy-tile fraction a given rate
    // produces: shuffle (short paths, few busy routers per flit) and
    // uniform (near the longest average paths on a mesh). The
    // rate-0.01 uniform rows carry the event-fine acceptance ratio.
    for (std::uint32_t side : cli.quick
                                  ? std::vector<std::uint32_t>{8u}
                                  : std::vector<std::uint32_t>{8u, 16u})
    {
        const Cycle cycles = side >= 16 ? 15000
                             : cli.quick ? 12000
                                         : 40000;
        for (const char *pattern : {"shuffle", "uniform"})
            for (double rate : {0.01, 0.02, 0.05})
                sweep_row(side, pattern, rate, /*burst_period=*/0,
                          cycles, /*gate_fine_ratio=*/rate == 0.01);
        // Saturation guard: with every tile busy every cycle, the
        // wake bookkeeping is pure overhead and must stay in noise.
        for (double rate : {0.10, 0.30, 0.60})
            sweep_row(side, "uniform", rate, /*burst_period=*/0,
                      cycles);
    }

    // Bursty traffic with fully drained gaps (Fig 7a regime): the
    // trace-replay-with-idle-gaps case named in the issue.
    if (!cli.quick)
        sweep_row(16, "bitcomp", 0.0, /*burst_period=*/4000, 40000);

    // Giant meshes (ISSUE 6): the arena-backed layout's target. Rows
    // use the O(N)-flow shuffle pattern — all-pairs flow tables are
    // quadratic in nodes and would swamp construction at this size —
    // at a low rate where the event scheduler's O(active) cycles and
    // the packed per-shard slabs both matter. The bytes/tile rows pin
    // the construction footprint itself (deterministic, gated
    // exactly).
    for (std::uint32_t side : {32u, 64u}) {
        const Cycle cycles = cli.quick ? (side == 32 ? 1500 : 400)
                                       : (side == 32 ? 3000 : 1000);
        sweep_row(side, "shuffle", 0.02, /*burst_period=*/0, cycles);
        // The 32x32 low-rate acceptance row (ISSUE 7): most of the
        // grid idle, the per-tile cost dominated by the handful of
        // in-flight flits.
        if (side == 32)
            sweep_row(side, "shuffle", 0.01, /*burst_period=*/0,
                      cycles, /*gate_fine_ratio=*/true);
        footprint_row(side);
    }

    // Cross-thread lockstep: the wake-mailbox hand-off (see above).
    // The expected delivered count pins bitwise identity — it must
    // match the single-thread rows of the same config. The quick
    // horizon is sized so even the event rows stay above the
    // regression checker's tiny-row floor (sub-quarter-second
    // timings jitter beyond any useful gate).
    {
        const std::uint32_t side = cli.quick ? 8 : 16;
        const Cycle cycles = cli.quick ? 20000 : 15000;
        const Sample ref = run_one(side, "uniform", 0.05, 0,
                                   sim::Schedule::Poll, cycles,
                                   /*threads=*/1);
        for (unsigned threads : {2u, 4u})
            cross_thread_row(side, 0.05, cycles, threads,
                             ref.delivered);
    }

    std::printf("# event_speedup = poll_s / event_s; fine_speedup = "
                "event_s / fine_s; tile_cycles_slept is the fraction "
                "of the tile x cycle grid not ticked; xthreadN rows "
                "run N lockstep shards\n");
    report.write_if_requested(cli);
    return 0;
}
