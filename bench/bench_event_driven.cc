/**
 * @file
 * Event-driven shard scheduling: O(active tiles) cycles vs the
 * polling scheduler's O(all tiles), extending the Fig 7 fast-forward
 * methodology from "skip globally idle stretches" to "skip every idle
 * tile, every cycle".
 *
 * The sweep crosses injection rate x mesh size x scheduler under
 * cycle-accurate sync with fast-forwarding off, so the entire
 * difference comes from per-tile sleeping. At low rates most of the
 * tile x cycle grid is idle and the event scheduler's cost tracks the
 * handful of active tiles; at saturation every tile is busy every
 * cycle and the event scheduler must stay within noise of polling
 * (its wake bookkeeping is the only overhead). A bursty row (long
 * fully-drained gaps, the Fig 7a regime) shows the trace-replay case
 * where sleeping wins even without fast-forward.
 *
 * Acceptance targets (ISSUE 3): >= 2x speedup at rates <= 0.05
 * flits/node/cycle on a 16x16 mesh; <= ~5% regression at saturation.
 */
#include <cstdio>

#include "bench_util.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

struct Sample
{
    double wall_s = 0.0;
    double skipped_frac = 0.0;
    std::uint64_t delivered = 0;
};

Sample
run_one(std::uint32_t side, const char *pattern, double rate,
        Cycle burst_period, bool event, Cycle cycles)
{
    net::Topology topo = net::Topology::mesh2d(side, side);
    auto sys = make_synthetic(topo, {}, pattern, rate, 8, 17, "xy",
                              burst_period,
                              /*burst_size=*/burst_period ? 2 : 1);
    sim::CycleAccurateSync policy;
    sim::EngineOptions opts;
    opts.max_cycles = cycles;
    opts.event_driven = event;
    Sample out;
    out.wall_s =
        wall_seconds([&] { sys->run(policy, opts, /*threads=*/1); });
    auto stats = sys->collect_stats();
    const std::uint64_t grid =
        stats.tile_cycles_run + stats.tile_cycles_skipped;
    out.skipped_frac =
        grid ? static_cast<double>(stats.tile_cycles_skipped) /
                   static_cast<double>(grid)
             : 0.0;
    out.delivered = stats.total.flits_delivered;
    return out;
}

void
sweep_row(std::uint32_t side, const char *pattern, double rate,
          Cycle burst_period, Cycle cycles)
{
    Sample poll =
        run_one(side, pattern, rate, burst_period, false, cycles);
    Sample event =
        run_one(side, pattern, rate, burst_period, true, cycles);
    if (poll.delivered != event.delivered)
        fatal("scheduler changed results: delivered flits diverged");
    std::printf("%ux%u,%s,%s,%.3f,%lu,%.3f,%.3f,%.1f%%,%.2f\n", side,
                side, pattern, burst_period ? "burst" : "rate", rate,
                static_cast<unsigned long>(burst_period), poll.wall_s,
                event.wall_s, 100.0 * event.skipped_frac,
                poll.wall_s / event.wall_s);
}

} // namespace

int
main()
{
    std::printf("# Event-driven vs polling shard scheduling "
                "(cycle-accurate, 1 thread, no fast-forward)\n");
    std::printf("mesh,pattern,mode,rate,burst_period,poll_s,event_s,"
                "tile_cycles_slept,speedup\n");

    // Injection-rate sweep: O(active) scaling against offered load.
    // Two patterns bracket the busy-tile fraction a given rate
    // produces: shuffle (short paths, few busy routers per flit) and
    // uniform (near the longest average paths on a mesh).
    for (std::uint32_t side : {8u, 16u}) {
        const Cycle cycles = side >= 16 ? 15000 : 40000;
        for (const char *pattern : {"shuffle", "uniform"})
            for (double rate : {0.01, 0.02, 0.05})
                sweep_row(side, pattern, rate, /*burst_period=*/0,
                          cycles);
        // Saturation guard: with every tile busy every cycle, the
        // wake bookkeeping is pure overhead and must stay in noise.
        for (double rate : {0.10, 0.30, 0.60})
            sweep_row(side, "uniform", rate, /*burst_period=*/0,
                      cycles);
    }

    // Bursty traffic with fully drained gaps (Fig 7a regime): the
    // trace-replay-with-idle-gaps case named in the issue.
    sweep_row(16, "bitcomp", 0.0, /*burst_period=*/4000, 40000);

    std::printf("# speedup = poll_s / event_s; tile_cycles_slept is "
                "the fraction of the tile x cycle grid not ticked\n");
    return 0;
}
