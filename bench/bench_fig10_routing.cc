/**
 * @file
 * Fig 10: effect of the routing and VC-allocation scheme on network
 * transit latency for the WATER-like trace in a relatively congested
 * network, at 2 and 4 VCs per port. O1TURN and ROMM (more path
 * diversity) beat XY, but by a modest margin — exactly the paper's
 * point that intuition overestimates the gain.
 */
#include <cstdio>

#include "bench_util.h"
#include "workloads/splash.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

double
run_config(const std::string &routing, std::uint32_t vcs,
           net::VcaMode mode)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    auto profile = workloads::splash_profile("water");
    profile.active_rate = 0.22; // "relatively congested" (paper)
    auto events =
        workloads::synthesize_trace(profile, topo, {0}, 60000, 5);
    net::NetworkConfig cfg;
    cfg.router.net_vcs = vcs;
    cfg.router.net_vc_capacity = 4;
    cfg.router.vca_mode = mode;
    TraceRunOptions opts;
    opts.cycles = 90000;
    opts.stop_when_done = true;
    opts.routing = routing;
    auto r = run_trace(topo, cfg, events, opts);
    return r.stats.avg_packet_latency();
}

} // namespace

int
main()
{
    std::printf("# Fig 10: routing x VCA on the WATER-like trace "
                "(8x8, congested)\n");
    std::printf("vcs,routing,vca,avg_packet_latency\n");
    for (std::uint32_t vcs : {2u, 4u}) {
        for (const char *routing : {"xy", "o1turn", "romm"}) {
            for (auto mode :
                 {net::VcaMode::Dynamic, net::VcaMode::Edvca}) {
                double lat = run_config(routing, vcs, mode);
                std::printf("%u,%s,%s,%.2f\n", vcs, routing,
                            net::to_string(mode), lat);
            }
        }
    }
    std::printf("# paper shape: O1TURN/ROMM lower latency than XY, "
                "but not dramatically\n");
    return 0;
}
