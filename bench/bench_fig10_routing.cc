/**
 * @file
 * Fig 10: effect of the routing and VC-allocation scheme on network
 * transit latency for the WATER-like trace in a relatively congested
 * network, at 2 and 4 VCs per port. O1TURN and ROMM (more path
 * diversity) beat XY, but by a modest margin — exactly the paper's
 * point that intuition overestimates the gain.
 *
 * The 12-point grid goes through the sweep engine: the routing scheme
 * and VC configuration are both part of the immutable blueprint half,
 * so each point is one Job on its own SystemBlueprint, all replaying
 * the once-synthesized WATER trace and running concurrently on the
 * JobEngine's workers.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "sim/job_engine.h"
#include "sim/system_blueprint.h"
#include "traffic/trace.h"
#include "workloads/splash.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

/** Blueprint for one routing x VC configuration of the 8x8 WATER
 *  mesh; the factory replays the shared per-node trace slices. */
std::shared_ptr<sim::SystemBlueprint>
make_water_blueprint(const net::Topology &topo,
                     const net::NetworkConfig &cfg,
                     const std::string &routing,
                     const std::vector<traffic::TraceEvent> &events)
{
    auto bp = std::make_shared<sim::SystemBlueprint>(topo, cfg);
    build_routing(bp->network(), routing,
                  traffic::flows_from_trace(events));
    auto per_node = std::make_shared<
        const std::vector<std::vector<traffic::TraceEvent>>>(
        traffic::split_trace_by_source(events, topo.num_nodes()));
    bp->set_frontend_factory([per_node](sim::System &sys, std::uint64_t) {
        for (NodeId n = 0; n < sys.num_tiles(); ++n) {
            if (!(*per_node)[n].empty())
                sys.add_frontend(
                    n, std::make_unique<traffic::TraceInjector>(
                           sys.tile(n), (*per_node)[n]));
        }
    });
    bp->freeze();
    return bp;
}

} // namespace

int
main()
{
    std::printf("# Fig 10: routing x VCA on the WATER-like trace "
                "(8x8, congested)\n");
    std::printf("vcs,routing,vca,avg_packet_latency\n");

    const net::Topology topo = net::Topology::mesh2d(8, 8);
    auto profile = workloads::splash_profile("water");
    profile.active_rate = 0.22; // "relatively congested" (paper)
    const auto events =
        workloads::synthesize_trace(profile, topo, {0}, 60000, 5);

    sim::RunOptions ro;
    ro.max_cycles = 90000;
    ro.stop_when_done = true;

    struct Point
    {
        std::uint32_t vcs;
        const char *routing;
        net::VcaMode mode;
    };
    std::vector<Point> points;

    sim::JobEngine engine;
    for (std::uint32_t vcs : {2u, 4u}) {
        for (const char *routing : {"xy", "o1turn", "romm"}) {
            for (auto mode :
                 {net::VcaMode::Dynamic, net::VcaMode::Edvca}) {
                net::NetworkConfig cfg;
                cfg.router.net_vcs = vcs;
                cfg.router.net_vc_capacity = 4;
                cfg.router.vca_mode = mode;
                sim::Job job;
                job.blueprint =
                    make_water_blueprint(topo, cfg, routing, events);
                job.run = ro;
                engine.submit(std::move(job));
                points.push_back({vcs, routing, mode});
            }
        }
    }
    const auto results = engine.finish();

    for (std::size_t i = 0; i < results.size(); ++i)
        std::printf("%u,%s,%s,%.2f\n", points[i].vcs, points[i].routing,
                    net::to_string(points[i].mode),
                    results[i].stats.avg_packet_latency());
    std::printf("# paper shape: O1TURN/ROMM lower latency than XY, "
                "but not dramatically\n");
    return 0;
}
