/**
 * @file
 * Fig 8: the effect of modeling congestion on measured flit latency.
 * The same application trace is run through (a) the cycle-accurate
 * network and (b) a congestion-oblivious model where injection
 * bandwidth is limited identically but transit latency is a pure
 * hop-count function. For the high-traffic RADIX-like trace, ignoring
 * congestion underestimates latency by ~2x; for the light
 * SWAPTIONS-like trace the difference is negligible (64-core system,
 * 4 VCs, as in the paper).
 */
#include <cstdio>

#include "bench_util.h"
#include "net/ideal_network.h"
#include "workloads/splash.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

void
run_benchmark(const char *name)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    auto profile = workloads::splash_profile(name);
    // The Graphite-captured traces the paper replays drive the
    // network hard but not into deep saturation (their RADIX shows a
    // ~2x congestion effect); scale the synthesizer accordingly.
    if (std::string(name) == "radix")
        profile.active_rate = 0.12;
    auto events = workloads::synthesize_trace(profile, topo, {0}, 60000,
                                              2024);

    // (a) congestion-accurate: the full cycle-level simulator.
    net::NetworkConfig cfg;
    cfg.router.net_vcs = 4;
    TraceRunOptions opts;
    opts.cycles = 90000;
    opts.stop_when_done = true;
    auto accurate = run_trace(topo, cfg, events, opts);

    // (b) congestion-oblivious: hop-count latencies, same injection
    // bandwidth limit.
    net::IdealNetwork ideal(topo);
    for (const auto &e : events) {
        net::PacketDesc pkt;
        pkt.flow = e.flow;
        pkt.src = e.src;
        pkt.dst = e.dst;
        pkt.size = e.size;
        ideal.inject(pkt, e.cycle);
    }

    const double with_c = accurate.stats.avg_flit_latency();
    const double without_c = ideal.stats().avg_flit_latency();
    std::printf("%s,%.2f,%.2f,%.2fx\n", name, with_c, without_c,
                with_c / without_c);
}

} // namespace

int
main()
{
    std::printf("# Fig 8: congestion-accurate vs congestion-oblivious "
                "avg flit latency (8x8, 4 VCs)\n");
    std::printf(
        "trace,with_congestion,without_congestion,underestimate\n");
    run_benchmark("radix");
    run_benchmark("swaptions");
    std::printf("# paper shape: ~2x underestimate for RADIX, "
                "negligible for SWAPTIONS\n");
    return 0;
}
