/**
 * @file
 * Fig 14: steady-state temperature distribution over the 8x8 mesh for
 * RADIX-like and WATER-like traffic (XY routing, MC in the lower-left
 * corner). The paper's finding: although the memory controller sits in
 * the corner, the hotspot stays in the *center* of the chip for every
 * benchmark — XY (like nearly all routing algorithms) funnels a
 * greater share of traffic through the central region — so a single
 * central thermal sensor suffices. Magnitudes differ by benchmark
 * (>5 C in the paper) while the shape is unchanged.
 */
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "power/power_model.h"
#include "thermal/thermal_model.h"
#include "workloads/splash.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

constexpr double kCoreBaselineW = 3.0;
constexpr double kRouterEnergyScale = 150.0;

std::vector<double>
steady_map(const char *profile_name, std::uint64_t seed)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    const Cycle duration = 120000;
    auto profile = workloads::splash_profile(profile_name);
    // Moderate MC share: the center hotspot comes from pass-through
    // traffic, which XY concentrates in the middle of the mesh.
    profile.mc_fraction = 0.15;
    auto events =
        workloads::synthesize_trace(profile, topo, {0}, duration, seed);
    net::NetworkConfig cfg;
    TraceRunOptions opts;
    opts.cycles = duration;
    opts.stop_when_done = true;
    auto rr = run_trace(topo, cfg, events, opts);

    power::PowerConfig pc;
    pc.e_buffer_write_pj *= kRouterEnergyScale;
    pc.e_buffer_read_pj *= kRouterEnergyScale;
    pc.e_xbar_per_port_pj *= kRouterEnergyScale;
    pc.e_link_pj *= kRouterEnergyScale;
    power::PowerModel pm(net::RouterConfig{}, 5, pc);

    std::vector<double> watts(topo.num_nodes());
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        auto delta = power::activity_delta(TileStats{},
                                           rr.stats.per_tile[n]);
        watts[n] = kCoreBaselineW +
                   pm.epoch_power_mw(delta, rr.end_cycle) / 1000.0;
    }
    thermal::ThermalConfig tc;
    tc.ambient_c = 45.0;
    tc.g_edge_per_missing_neighbor = 1.0 / tc.r_lateral;
    thermal::ThermalModel tm(topo, tc);
    return tm.steady_state(watts);
}

void
print_map(const char *name, const std::vector<double> &t)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    const double lo = *std::min_element(t.begin(), t.end());
    const double hi = *std::max_element(t.begin(), t.end());
    const std::uint32_t hot =
        thermal::ThermalModel::hottest(t);
    std::printf("map=%s min=%.2fC max=%.2fC hottest_tile=(%u,%u)\n",
                name, lo, hi, topo.x_of(hot), topo.y_of(hot));
    for (std::uint32_t y = 0; y < 8; ++y) {
        std::printf("  ");
        for (std::uint32_t x = 0; x < 8; ++x)
            std::printf("%6.2f ", t[topo.node_at(x, y)]);
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    std::printf("# Fig 14: steady-state temperature maps (8x8, XY, MC "
                "at corner (0,0))\n");
    auto radix = steady_map("radix", 7);
    auto water = steady_map("water", 7);
    print_map("radix", radix);
    print_map("water", water);
    std::printf("magnitude_difference_max=%.2fC\n",
                *std::max_element(radix.begin(), radix.end()) -
                    *std::max_element(water.begin(), water.end()));
    std::printf("# paper shape: hotspot central for every benchmark "
                "despite the corner MC; magnitude differs by "
                "benchmark\n");
    return 0;
}
