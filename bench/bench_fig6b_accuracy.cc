/**
 * @file
 * Fig 6b: speedup and timing accuracy vs synchronization period for
 * TRANSPOSE traffic. Accuracy is the average-packet-latency agreement
 * with the fully clock-accurate run (same seeds), exactly the paper's
 * measurement method (Section III).
 */
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace hornet;
using namespace hornet::benchutil;

namespace {

struct Sample
{
    double latency;
    double wall_s;
};

Sample
run_once(std::uint32_t sync_period, unsigned threads)
{
    net::Topology topo = net::Topology::mesh2d(16, 16);
    auto sys = make_synthetic(topo, {}, "transpose", 0.08, 8, 7);
    Sample s{};
    s.wall_s = wall_seconds([&] {
        sim::RunOptions ro;
        ro.max_cycles = 25000;
        ro.threads = threads;
        ro.sync_period = sync_period;
        sys->run(ro);
    });
    s.latency = sys->collect_stats().avg_packet_latency();
    return s;
}

} // namespace

int
main()
{
    std::printf("# Fig 6b: accuracy & speedup vs sync period "
                "(transpose on 16x16, 2 threads)\n");
    std::printf("sync_period,avg_latency,accuracy_pct,speedup\n");

    const unsigned threads = 2;
    Sample base = run_once(1, threads);
    std::printf("1,%.2f,100.00,1.00\n", base.latency);

    for (std::uint32_t period : {5u, 10u, 50u, 100u, 500u, 1000u}) {
        Sample s = run_once(period, threads);
        double accuracy =
            100.0 *
            (1.0 - std::abs(s.latency - base.latency) / base.latency);
        std::printf("%u,%.2f,%.2f,%.2f\n", period, s.latency, accuracy,
                    base.wall_s / s.wall_s);
    }
    std::printf("# paper shape: accuracy stays high (>90%%) at small "
                "periods and degrades with larger ones\n");
    std::printf("# host note: with a single hardware core the OS "
                "serializes whole chunks, so large-period skew (and "
                "its accuracy cost) is worst-case here\n");
    return 0;
}
