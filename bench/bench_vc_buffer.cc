/**
 * @file
 * VC-buffer fabric microbenchmark: push/pop throughput of a single
 * buffer on the paths the simulator actually exercises — same-thread
 * (synchronized and unsynchronized/local), cross-thread, and batched
 * (window) handoff — plus a 16x16 uniform-random mesh sweep across
 * thread counts, where VC buffers are the only inter-tile
 * communication points and therefore the hot path of every cycle.
 * Before/after numbers for the lock-free refactor are recorded in
 * docs/BENCHMARKS.md ("The communication fabric").
 *
 * The cross-thread loops yield when they stall (no credit / nothing
 * visible): on machines with fewer free cores than threads a bare spin
 * burns whole scheduler quanta and measures the OS, not the buffer.
 */
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "net/vc_buffer.h"

namespace {

using namespace hornet;
using net::Flit;
using net::VcBuffer;

Flit
make_flit(FlowId flow, Cycle arrival, std::uint32_t seq)
{
    Flit f;
    f.flow = flow;
    f.original_flow = flow;
    f.arrival_cycle = arrival;
    f.seq = seq;
    return f;
}

constexpr Cycle kAlways = ~Cycle{0};
constexpr std::uint32_t kCap = 8;

/** Same-thread fill/drain cycles, optionally on the local fast path. */
double
single_thread_mflits(std::uint64_t flits, bool local)
{
    VcBuffer b(kCap);
    b.set_local(local);
    const double s = benchutil::wall_seconds([&] {
        std::uint64_t sent = 0;
        while (sent < flits) {
            while (b.free_slots() > 0 && sent < flits)
                b.push(make_flit(1, 0, static_cast<std::uint32_t>(sent++)));
            while (b.front_visible(kAlways).has_value())
                b.pop();
            b.commit_negedge();
        }
    });
    return static_cast<double>(flits) / s / 1e6;
}

/** Same-thread staged window + flush + drain cycles. */
double
single_thread_batched_mflits(std::uint64_t flits)
{
    VcBuffer b(kCap);
    b.set_batched(true);
    const double s = benchutil::wall_seconds([&] {
        std::uint64_t sent = 0;
        while (sent < flits) {
            while (b.free_slots() > 0 && sent < flits)
                b.push(make_flit(1, 0, static_cast<std::uint32_t>(sent++)));
            b.flush_staged();
            while (b.front_visible(kAlways).has_value())
                b.pop();
            b.commit_negedge();
        }
    });
    return static_cast<double>(flits) / s / 1e6;
}

/** Producer thread vs consumer thread, direct or batched pushes. */
double
cross_thread_mflits(std::uint64_t flits, bool batched)
{
    VcBuffer b(kCap);
    b.set_batched(batched);
    const double s = benchutil::wall_seconds([&] {
        std::thread producer([&] {
            std::uint64_t sent = 0;
            while (sent < flits) {
                while (b.free_slots() > 0 && sent < flits)
                    b.push(make_flit(1, 0,
                                     static_cast<std::uint32_t>(sent++)));
                if (batched)
                    b.flush_staged();
                if (b.free_slots() == 0)
                    std::this_thread::yield();
            }
        });
        std::uint64_t got = 0;
        while (got < flits) {
            if (b.front_visible(kAlways).has_value()) {
                b.pop();
                ++got;
                if ((got & 7) == 0)
                    b.commit_negedge();
            } else {
                b.commit_negedge();
                std::this_thread::yield();
            }
        }
        producer.join();
        b.commit_negedge();
    });
    return static_cast<double>(flits) / s / 1e6;
}

/** benchutil::best_of_3 keyed for throughputs (bigger is better). */
template <typename Fn>
double
best_mflits(Fn &&measure)
{
    return benchutil::best_of_3(measure, [](double v) { return v; });
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = benchutil::BenchCli::parse(argc, argv);
    benchutil::JsonReport report("bench_vc_buffer");

    // ------------------------------------------------------------------
    // Microbenchmark: one buffer, the four fabric paths. Full-size
    // even under --quick: the loops are already CI-cheap (a few
    // hundred ms with the best-of-3), and shorter samples proved too
    // jittery to gate at 15% on shared hosts — the quick savings come
    // from the mesh sweep below.
    // ------------------------------------------------------------------
    const std::uint64_t kSingle = 4'000'000;
    const std::uint64_t kCross = 2'000'000;

    std::printf("path,Mflit_per_s\n");
    const struct
    {
        const char *name;
        double mflits;
    } micro[] = {
        {"single_thread_sync",
         best_mflits([&] { return single_thread_mflits(kSingle, false); })},
        {"single_thread_local",
         best_mflits([&] { return single_thread_mflits(kSingle, true); })},
        {"single_thread_batched",
         best_mflits([&] { return single_thread_batched_mflits(kSingle); })},
        {"cross_thread_direct",
         best_mflits([&] { return cross_thread_mflits(kCross, false); })},
        {"cross_thread_batched",
         best_mflits([&] { return cross_thread_mflits(kCross, true); })},
    };
    for (const auto &row : micro) {
        std::printf("%s,%.1f\n", row.name, row.mflits);
        std::fflush(stdout);
        report.higher_is_better(row.name, row.mflits);
    }

    // ------------------------------------------------------------------
    // Mesh sweep: 16x16 uniform random at 0.1 flits/node/cycle, the
    // whole simulator on top of the fabric. Lockstep (period 1) runs
    // must deliver identical flit counts at every thread count. The
    // shard scheduler follows HORNET_SCHEDULE like every run.
    // ------------------------------------------------------------------
    const net::Topology topo = net::Topology::mesh2d(16, 16);
    net::NetworkConfig cfg;
    const Cycle mesh_cycles = cli.quick ? 1000 : 3000;
    std::printf("threads,sync_period,wall_s,flits_delivered\n");
    for (unsigned threads : {1u, 2u, 8u}) {
        for (std::uint32_t period : {1u, 32u}) {
            // Fastest of three fresh systems (benchutil::best_of_3).
            // Lockstep rows deliver identical flit counts every
            // repetition; loose rows are timing-nondeterministic by
            // design.
            struct MeshSample
            {
                double wall_s;
                std::uint64_t delivered;
            };
            const MeshSample m = benchutil::best_of_3(
                [&] {
                    auto sys = benchutil::make_synthetic(
                        topo, cfg, "uniform", 0.1, 4, 42, "xy");
                    sim::RunOptions ro;
                    ro.max_cycles = mesh_cycles;
                    ro.threads = threads;
                    ro.sync_period = period;
                    const double s = benchutil::wall_seconds(
                        [&] { sys->run(ro); });
                    return MeshSample{
                        s, sys->collect_stats().total.flits_delivered};
                },
                [](const MeshSample &r) { return -r.wall_s; });
            std::printf("%u,%u,%.2f,%llu\n", threads, period, m.wall_s,
                        static_cast<unsigned long long>(m.delivered));
            std::fflush(stdout);
            char name[64];
            std::snprintf(name, sizeof name, "mesh16_t%u_p%u_wall_s",
                          threads, period);
            report.lower_is_better(name, m.wall_s);
        }
    }

    // ------------------------------------------------------------------
    // Giant meshes (ISSUE 6): single-thread lockstep on 32x32 and
    // 64x64, where the arena layout packs every tile's rings and flow
    // tables back to back — these rows move when the per-flit memory
    // path changes. Shuffle keeps the flow tables O(N); all-pairs
    // would be quadratic in nodes at this size.
    // ------------------------------------------------------------------
    std::printf("mesh,wall_s,flits_delivered\n");
    for (std::uint32_t side : {32u, 64u}) {
        const net::Topology big = net::Topology::mesh2d(side, side);
        const Cycle cycles = cli.quick ? (side == 32 ? 800 : 250)
                                       : (side == 32 ? 1600 : 500);
        struct MeshSample
        {
            double wall_s;
            std::uint64_t delivered;
        };
        const MeshSample m = benchutil::best_of_3(
            [&] {
                auto sys = benchutil::make_synthetic(
                    big, cfg, "shuffle", 0.05, 4, 42, "xy");
                sim::RunOptions ro;
                ro.max_cycles = cycles;
                ro.threads = 1;
                ro.sync_period = 1;
                const double s =
                    benchutil::wall_seconds([&] { sys->run(ro); });
                return MeshSample{
                    s, sys->collect_stats().total.flits_delivered};
            },
            [](const MeshSample &r) { return -r.wall_s; });
        std::printf("%ux%u,%.2f,%llu\n", side, side, m.wall_s,
                    static_cast<unsigned long long>(m.delivered));
        std::fflush(stdout);
        char name[64];
        std::snprintf(name, sizeof name, "mesh%u_t1_p1_wall_s", side);
        report.lower_is_better(name, m.wall_s);
    }

    report.write_if_requested(cli);
    return 0;
}
