/**
 * @file
 * Sweep-engine benchmark (ISSUE 9): jobs/sec of a 100+ point
 * parameter sweep submitted through sim::JobEngine versus the serial
 * hand-rolled loop the figure benches used before the sweep engine
 * existed (a fresh System, routing build and table freeze per point),
 * plus the construction speedup of instantiating from a frozen
 * SystemBlueprint over building from scratch.
 *
 * Every job's delivered-traffic digest is checked against the
 * standalone fresh-built run of the same point (the serial loop *is*
 * that reference); any mismatch aborts the bench — the speedup is
 * only interesting if the results are bitwise identical.
 *
 * Rows (all gated by scripts/check_bench_regression.py):
 *   sweep_jobs_per_sec      sweep points retired per second (engine)
 *   concurrent_over_serial  engine rate over hand-rolled-loop rate
 *   blueprint_over_scratch  constructions/sec from blueprint over
 *                           constructions/sec from scratch
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/job_engine.h"
#include "sim/system_blueprint.h"
#include "traffic/patterns.h"

namespace {

using namespace hornet;

// The sweep is sized so the serial loop's per-point cost is dominated
// by the work the blueprint amortizes (all-pairs routing build +
// table freeze, superlinear in nodes), with a short-but-nontrivial
// drained run per point: the regime the sweep engine exists for.
struct SweepConfig
{
    std::uint32_t side = 8;
    int points = 108;
    double rate = 0.05;
    std::uint32_t packet_size = 4;
    Cycle stop_at = 150;     // injectors stop offering here...
    Cycle max_cycles = 8000; // ...and the run drains to completion
};

std::uint64_t
seed_of(int point)
{
    return 1000 + static_cast<std::uint64_t>(point);
}

sim::RunOptions
sweep_run_options(const SweepConfig &sc)
{
    sim::RunOptions ro;
    ro.max_cycles = sc.max_cycles;
    ro.stop_when_done = true;
    ro.schedule = "event";
    return ro;
}

void
attach_uniform(sim::System &sys, const traffic::Pattern &pattern,
               const SweepConfig &sc)
{
    for (NodeId n = 0; n < sys.num_tiles(); ++n) {
        traffic::SyntheticConfig tc;
        tc.pattern = pattern;
        tc.packet_size = sc.packet_size;
        tc.rate = sc.rate;
        tc.stop_at = sc.stop_at;
        sys.add_frontend(n, std::make_unique<traffic::SyntheticInjector>(
                                sys.tile(n), tc));
    }
}

// One point the pre-sweep-engine way: fresh System, all-pairs uniform
// routing built and frozen from scratch.
std::unique_ptr<sim::System>
build_scratch(const net::Topology &topo, const SweepConfig &sc,
              std::uint64_t seed)
{
    net::NetworkConfig cfg;
    auto sys = std::make_unique<sim::System>(topo, cfg, seed);
    auto pattern = traffic::pattern_by_name("uniform", topo.num_nodes());
    benchutil::build_routing(sys->network(), "xy",
                             traffic::flows_all_pairs(topo.num_nodes()));
    attach_uniform(*sys, pattern, sc);
    sys->freeze_tables();
    return sys;
}

std::shared_ptr<sim::SystemBlueprint>
build_blueprint(const net::Topology &topo, const SweepConfig &sc)
{
    net::NetworkConfig cfg;
    auto bp = std::make_shared<sim::SystemBlueprint>(topo, cfg);
    auto pattern = traffic::pattern_by_name("uniform", topo.num_nodes());
    benchutil::build_routing(bp->network(), "xy",
                             traffic::flows_all_pairs(topo.num_nodes()));
    bp->set_frontend_factory(
        [pattern, sc](sim::System &sys, std::uint64_t) {
            attach_uniform(sys, pattern, sc);
        });
    bp->freeze();
    return bp;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = benchutil::BenchCli::parse(argc, argv);
    benchutil::JsonReport report("bench_job_engine");

    SweepConfig sc;
    if (!cli.quick) {
        sc.side = 10;
        sc.points = 216;
    }
    const net::Topology topo = net::Topology::mesh2d(sc.side, sc.side);
    const sim::RunOptions ro = sweep_run_options(sc);

    std::printf("sweep: %ux%u mesh, uniform all-pairs, %d points\n",
                sc.side, sc.side, sc.points);

    // --- Serial hand-rolled loop (also the digest reference) --------
    std::vector<std::uint64_t> reference(sc.points);
    const double serial_s = benchutil::wall_seconds([&] {
        for (int p = 0; p < sc.points; ++p) {
            auto sys = build_scratch(topo, sc, seed_of(p));
            sys->run(ro);
            reference[p] = stats_fingerprint(sys->collect_stats());
        }
    });

    // --- The same grid through the sweep engine ----------------------
    auto bp = build_blueprint(topo, sc);
    std::vector<sim::JobResult> results;
    const double engine_s = benchutil::wall_seconds([&] {
        sim::JobEngine engine; // defaults: one worker per host thread
        for (int p = 0; p < sc.points; ++p) {
            sim::Job job;
            job.blueprint = bp;
            job.seed = seed_of(p);
            job.run = ro;
            engine.submit(std::move(job));
        }
        results = engine.finish();
    });
    if (static_cast<int>(results.size()) != sc.points)
        fatal("sweep engine lost jobs");
    int reused = 0;
    for (int p = 0; p < sc.points; ++p) {
        if (results[p].digest != reference[p])
            fatal(strcat("digest mismatch at sweep point ", p,
                         ": engine run is not bitwise identical to the "
                         "standalone fresh-built run"));
        reused += results[p].reused_system ? 1 : 0;
    }

    // --- Construction cost: blueprint instantiation vs scratch ------
    const int builds = cli.quick ? 8 : 12;
    const double scratch_build_s = benchutil::wall_seconds([&] {
        for (int b = 0; b < builds; ++b)
            build_scratch(topo, sc, seed_of(b));
    });
    const double blueprint_build_s = benchutil::wall_seconds([&] {
        for (int b = 0; b < builds; ++b)
            bp->instantiate(seed_of(b));
    });

    const double jobs_per_sec = sc.points / engine_s;
    const double serial_jobs_per_sec = sc.points / serial_s;
    const double speedup = serial_s / engine_s;
    const double build_speedup = scratch_build_s / blueprint_build_s;

    std::printf("serial loop:  %.2f s (%.1f jobs/s)\n", serial_s,
                serial_jobs_per_sec);
    std::printf("job engine:   %.2f s (%.1f jobs/s), %d/%d reused, "
                "%.2fx over serial\n",
                engine_s, jobs_per_sec, reused, sc.points, speedup);
    std::printf("construction: scratch %.4f s vs blueprint %.4f s "
                "for %d builds (%.2fx)\n",
                scratch_build_s, blueprint_build_s, builds, build_speedup);

    report.higher_is_better("sweep_jobs_per_sec", jobs_per_sec);
    report.higher_is_better("concurrent_over_serial", speedup);
    report.higher_is_better("blueprint_over_scratch", build_speedup);
    report.write_if_requested(cli);
    return 0;
}
