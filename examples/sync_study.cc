/**
 * @file
 * Walkthrough: choosing (or not choosing) a synchronization backend —
 * as a sweep.
 *
 * The paper's central dial is speed vs timing fidelity: cycle-accurate
 * barriers make a parallel run bitwise identical to a sequential one,
 * loose (periodic) synchronization trades a little per-flit latency
 * error for much less barrier overhead (Fig 6), and the adaptive
 * backend moves the window itself. Comparing backends is exactly the
 * multi-run shape the sweep engine exists for, so this example builds
 * the bursty 8x8 system *once* as a SystemBlueprint and submits the
 * backend x seed grid through sim::JobEngine; every run shares the
 * blueprint's frozen routing tables. A direct adaptive run (same
 * blueprint) follows for the controller's period timeline, which
 * needs the policy object itself.
 *
 *   $ ./examples/example_sync_study
 *
 * Prints the per-backend statistics table (deviation vs the same
 * seed's cycle-accurate reference) and the adaptive period timeline.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "net/routing/builders.h"
#include "net/topology.h"
#include "sim/job_engine.h"
#include "sim/sync_policy.h"
#include "sim/system.h"
#include "sim/system_blueprint.h"
#include "traffic/flows.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

using namespace hornet;

namespace {

/** Blueprint of the 8x8 transpose mesh whose nodes inject an
 *  8-packet burst every 500 cycles and are otherwise silent. */
std::shared_ptr<sim::SystemBlueprint>
make_bursty_blueprint()
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    net::NetworkConfig cfg;
    auto bp = std::make_shared<sim::SystemBlueprint>(topo, cfg);

    auto pattern =
        traffic::pattern_by_name("transpose", topo.num_nodes());
    auto flows = traffic::flows_for_pattern(topo.num_nodes(), pattern);
    net::routing::build_xy(bp->network(), flows);

    bp->set_frontend_factory([pattern](sim::System &sys, std::uint64_t) {
        for (NodeId n = 0; n < sys.num_tiles(); ++n) {
            traffic::SyntheticConfig sc;
            sc.pattern = pattern;
            sc.packet_size = 4;
            sc.rate = 0.0;
            sc.burst_period = 500;
            sc.burst_size = 8;
            sys.add_frontend(n,
                             std::make_unique<traffic::SyntheticInjector>(
                                 sys.tile(n), sc));
        }
    });
    bp->freeze();
    return bp;
}

/** One backend of the sweep grid. */
struct Backend
{
    const char *name;    ///< printed label
    unsigned threads;    ///< engine threads
    sim::RunOptions run; ///< everything else
};

} // namespace

int
main()
{
    constexpr Cycle kCycles = 6000;
    constexpr unsigned kThreads = 4;
    const std::vector<std::uint64_t> kSeeds = {7, 8};

    auto bp = make_bursty_blueprint();

    // ------------------------------------------------------------------
    // 1. The backend x seed grid, through the sweep engine. Backend 0
    //    (sequential cycle-accurate) is the reference every other
    //    backend of the same seed is judged against.
    // ------------------------------------------------------------------
    std::vector<Backend> backends;
    {
        sim::RunOptions ro;
        ro.max_cycles = kCycles;
        ro.sync = "cycle-accurate";
        ro.threads = 1;
        backends.push_back({"cycle-accurate", 1, ro});
        ro.sync = "periodic";
        ro.sync_period = 16;
        ro.threads = kThreads;
        backends.push_back({"periodic k=16", kThreads, ro});
        ro.sync = "adaptive";
        ro.adaptive.min_period = 1;
        ro.adaptive.max_period = 64;
        ro.batch_handoff = true;
        backends.push_back({"adaptive", kThreads, ro});
    }

    sim::JobEngine engine;
    for (std::uint64_t seed : kSeeds) {
        for (const Backend &b : backends) {
            sim::Job job;
            job.blueprint = bp;
            job.seed = seed;
            job.run = b.run;
            job.name = b.name;
            engine.submit(std::move(job));
        }
    }
    const auto results = engine.finish();

    std::printf("backend          seed  threads  flits   avg flit lat"
                "   vs reference\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        // The same seed's cycle-accurate run heads each seed group.
        const auto &ref = results[i - i % backends.size()];
        const double ref_lat = ref.stats.avg_flit_latency();
        const double dev =
            ref_lat > 0.0 ? 100.0 *
                                (r.stats.avg_flit_latency() - ref_lat) /
                                ref_lat
                          : 0.0;
        std::printf("%-16s %4llu  %7u  %5llu        %7.2f        %+.2f%%\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.seed),
                    backends[i % backends.size()].threads,
                    static_cast<unsigned long long>(
                        r.stats.total.flits_delivered),
                    r.stats.avg_flit_latency(), dev);
    }

    // ------------------------------------------------------------------
    // 2. The adaptive controller's decisions need the policy object,
    //    so this run goes direct — on a System instantiated from the
    //    same blueprint (no rebuilt routing tables). Expect shrinks at
    //    each burst (cycles ~0, 500, 1000, ...) and growth through
    //    each gap.
    // ------------------------------------------------------------------
    auto ad_sys = bp->instantiate(kSeeds.front());
    sim::AdaptiveSync::Options ao;
    ao.min_period = 1;
    ao.max_period = 64;
    sim::AdaptiveSync adaptive(ao);
    sim::EngineOptions opts;
    opts.max_cycles = kCycles;
    opts.batch_cross_shard = true;
    ad_sys->run(adaptive, opts, kThreads);

    std::printf("\nadaptive period timeline (cycle: new period)\n");
    for (const auto &[cycle, period] : adaptive.history())
        std::printf("  %6llu: %u\n",
                    static_cast<unsigned long long>(cycle), period);
    std::printf("final period: %u cycles in [%u, %u]\n",
                adaptive.period(), ao.min_period, ao.max_period);

    // The same setup is available declaratively: sync = adaptive in a
    // config file's [sim] section (see examples/config_run.cc).
    return 0;
}
