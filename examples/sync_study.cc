/**
 * @file
 * Walkthrough: choosing (or not choosing) a synchronization backend.
 *
 * The paper's central dial is speed vs timing fidelity: cycle-accurate
 * barriers make a parallel run bitwise identical to a sequential one,
 * loose (periodic) synchronization trades a little per-flit latency
 * error for much less barrier overhead (Fig 6), and fast-forward jumps
 * drained gaps entirely (IV-B). This example shows the fourth option —
 * the adaptive backend — reacting to a bursty workload: it narrows the
 * rendezvous window to lockstep while a burst is draining (accuracy
 * when it matters) and widens it toward its cap while the network is
 * quiet (speed when nothing interesting is in flight).
 *
 *   $ ./examples/sync_study
 *
 * Prints the cycle-accurate reference, the adaptive run's statistics,
 * and the controller's period timeline.
 */
#include <cstdio>
#include <memory>

#include "net/routing/builders.h"
#include "net/topology.h"
#include "sim/sync_policy.h"
#include "sim/system.h"
#include "traffic/flows.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

using namespace hornet;

namespace {

/** 8x8 transpose mesh that injects an 8-packet burst per node every
 *  500 cycles and is otherwise silent. */
std::unique_ptr<sim::System>
make_bursty_system(std::uint64_t seed)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    net::NetworkConfig cfg;
    auto sys = std::make_unique<sim::System>(topo, cfg, seed);

    auto pattern =
        traffic::pattern_by_name("transpose", topo.num_nodes());
    auto flows =
        traffic::flows_for_pattern(topo.num_nodes(), pattern);
    net::routing::build_xy(sys->network(), flows);

    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        traffic::SyntheticConfig sc;
        sc.pattern = pattern;
        sc.packet_size = 4;
        sc.rate = 0.0;
        sc.burst_period = 500;
        sc.burst_size = 8;
        sys->add_frontend(
            n, std::make_unique<traffic::SyntheticInjector>(
                   sys->tile(n), sc));
    }
    return sys;
}

} // namespace

int
main()
{
    constexpr Cycle kCycles = 6000;
    constexpr std::uint64_t kSeed = 7;
    constexpr unsigned kThreads = 4;

    // ------------------------------------------------------------------
    // 1. Reference: sequential, cycle-accurate. Every other run is
    //    judged against this latency distribution.
    // ------------------------------------------------------------------
    auto ref_sys = make_bursty_system(kSeed);
    sim::CycleAccurateSync ca;
    sim::EngineOptions opts;
    opts.max_cycles = kCycles;
    ref_sys->run(ca, opts, /*threads=*/1);
    auto ref = ref_sys->collect_stats();
    std::printf("cycle-accurate (1 thread): %llu flits delivered, "
                "avg flit latency %.2f cycles\n",
                static_cast<unsigned long long>(
                    ref.total.flits_delivered),
                ref.avg_flit_latency());

    // ------------------------------------------------------------------
    // 2. Adaptive backend, batched cross-shard handoff, 4 threads.
    //    No period to hand-tune: the controller watches cross-shard
    //    flit traffic and moves the window itself.
    // ------------------------------------------------------------------
    auto ad_sys = make_bursty_system(kSeed);
    sim::AdaptiveSync::Options ao;
    ao.min_period = 1;
    ao.max_period = 64;
    sim::AdaptiveSync adaptive(ao);
    opts.batch_cross_shard = true;
    ad_sys->run(adaptive, opts, kThreads);
    auto ad = ad_sys->collect_stats();

    const double dev =
        ref.avg_flit_latency() > 0.0
            ? 100.0 *
                  (ad.avg_flit_latency() - ref.avg_flit_latency()) /
                  ref.avg_flit_latency()
            : 0.0;
    std::printf("adaptive       (%u threads): %llu flits delivered, "
                "avg flit latency %.2f cycles (%+.2f%% vs reference)\n",
                kThreads,
                static_cast<unsigned long long>(
                    ad.total.flits_delivered),
                ad.avg_flit_latency(), dev);

    // ------------------------------------------------------------------
    // 3. The controller's decisions: every rendezvous-period change,
    //    with the cycle it took effect. Expect shrinks at each burst
    //    (cycles ~0, 500, 1000, ...) and growth through each gap.
    // ------------------------------------------------------------------
    std::printf("\nadaptive period timeline (cycle: new period)\n");
    for (const auto &[cycle, period] : adaptive.history())
        std::printf("  %6llu: %u\n",
                    static_cast<unsigned long long>(cycle), period);
    std::printf("final period: %u cycles in [%u, %u]\n",
                adaptive.period(), ao.min_period, ao.max_period);

    // The same setup is available declaratively: sync = adaptive in a
    // config file's [sim] section (see examples/config_run.cc).
    return 0;
}
