/**
 * @file
 * Quickstart: simulate uniform-random traffic on a 4x4 mesh and print
 * the delivered-traffic statistics.
 *
 *   $ ./examples/quickstart
 *
 * Walks through the whole public API surface in ~40 lines: topology,
 * network configuration, routing tables, synthetic injectors, the
 * parallel engine, and statistics collection.
 */
#include <cstdio>

#include "net/routing/builders.h"
#include "net/topology.h"
#include "sim/system.h"
#include "traffic/flows.h"
#include "traffic/synthetic.h"

using namespace hornet;

int
main()
{
    // 1. Geometry and router parameters (paper Table I knobs).
    net::Topology topo = net::Topology::mesh2d(4, 4);
    net::NetworkConfig cfg;
    cfg.router.net_vcs = 4;
    cfg.router.net_vc_capacity = 4;

    // 2. The system: one tile (router + PRNG + stats) per node.
    sim::System sys(topo, cfg, /*seed=*/1);

    // 3. Table-driven XY routing for every (src, dst) pair.
    net::routing::build_xy(sys.network(),
                           traffic::flows_all_pairs(topo.num_nodes()));

    // 4. A uniform-random synthetic injector on every tile.
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        traffic::SyntheticConfig sc;
        sc.pattern = traffic::uniform_random(topo.num_nodes());
        sc.packet_size = 8;
        sc.rate = 0.1; // flits/node/cycle
        sys.add_frontend(n, std::make_unique<traffic::SyntheticInjector>(
                                sys.tile(n), sc));
    }

    // 5. Run 2,000 warmup + 20,000 measured cycles, single-threaded.
    sim::RunOptions opts;
    opts.max_cycles = 2000;
    sys.run(opts);
    sys.reset_stats();
    opts.max_cycles = 22000;
    sys.run(opts);

    // 6. Report.
    auto stats = sys.collect_stats();
    std::printf("quickstart: 4x4 mesh, uniform random @ 0.1 "
                "flits/node/cycle\n");
    std::printf("%s\n", stats.summary().c_str());
    std::printf("p50 packet latency ~ %.1f cycles, p90 ~ %.1f\n",
                stats.total.packet_latency_hist.percentile(0.5),
                stats.total.packet_latency_hist.percentile(0.9));
    return 0;
}
