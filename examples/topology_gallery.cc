/**
 * @file
 * Topology gallery: print the figure-style geometry statistics for
 * every built-in interconnect at matched host counts.
 *
 *   $ ./examples/example_topology_gallery
 *
 * For each geometry this computes, from the Topology graph alone:
 *  - node/host/switch/link counts and the degree range,
 *  - diameter and mean distance over *host* pairs (switch-only
 *    transit nodes are not traffic endpoints),
 *  - the id-split cut: links crossing the lower/upper half of the
 *    host id space, a cheap stand-in for bisection bandwidth.
 *
 * See docs/TOPOLOGIES.md for the geometry catalog these numbers
 * belong to.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "net/topology.h"

using namespace hornet;

namespace {

void
gallery_row(const net::Topology &topo)
{
    const std::vector<NodeId> hosts = topo.hosts();

    std::uint32_t min_deg = ~0u, max_deg = 0;
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        const auto deg =
            static_cast<std::uint32_t>(topo.neighbors(n).size());
        min_deg = std::min(min_deg, deg);
        max_deg = std::max(max_deg, deg);
    }

    // Host-pair distance distribution (diameter + mean).
    std::uint32_t diameter = 0;
    double dist_sum = 0.0;
    std::uint64_t pairs = 0;
    for (NodeId s : hosts)
        for (NodeId d : hosts) {
            if (s == d)
                continue;
            const std::uint32_t hd = topo.hop_distance(s, d);
            diameter = std::max(diameter, hd);
            dist_sum += hd;
            ++pairs;
        }

    // Id-split cut: links with endpoints on opposite sides of the
    // host-id midpoint (switches count with the half their id falls
    // in). For the mesh this is the classic bisection; for the
    // indirect geometries it is a comparable even-split proxy.
    const NodeId mid_host = hosts[hosts.size() / 2];
    std::uint32_t cut = 0;
    for (NodeId u = 0; u < topo.num_nodes(); ++u)
        for (NodeId v : topo.neighbors(u))
            if (u < v && (u < mid_host) != (v < mid_host))
                ++cut;

    std::printf("%-16s %6u %6u %8u %6u %5u-%-4u %8u %10.2f %8u\n",
                topo.name().c_str(), topo.num_nodes(),
                topo.num_hosts(), topo.num_switches(),
                topo.num_links(), min_deg, max_deg, diameter,
                pairs ? dist_sum / static_cast<double>(pairs) : 0.0,
                cut);
}

} // namespace

int
main()
{
    std::printf("%-16s %6s %6s %8s %6s %9s %8s %10s %8s\n", "topology",
                "nodes", "hosts", "switches", "links", "degree",
                "diameter", "avg_dist", "cut");

    // 16 hosts each: what a fixed endpoint budget buys per geometry.
    gallery_row(net::Topology::mesh2d(4, 4));
    gallery_row(net::Topology::torus2d(4, 4));
    gallery_row(net::Topology::ring(16));
    gallery_row(net::Topology::mesh3d(4, 2, 2, net::LayerStyle::XCube));
    gallery_row(net::Topology::fat_tree(2, 4));
    gallery_row(net::Topology::dragonfly(4, 2, 2));

    // 64 hosts: the full-size bench gallery configurations.
    gallery_row(net::Topology::mesh2d(8, 8));
    gallery_row(net::Topology::fat_tree(3, 4));
    gallery_row(net::Topology::dragonfly(8, 4, 2));

    std::printf("\navg_dist averages hop distance over ordered host "
                "pairs; cut counts links crossing the host-id "
                "midpoint (bisection proxy).\n");
    return 0;
}
