/**
 * @file
 * Config-driven runner: describe an entire experiment in an INI file
 * (topology, router parameters, routing scheme, traffic) and run it —
 * no recompilation, exactly the "highly configurable" workflow the
 * paper advertises.
 *
 *   $ ./examples/config_run experiment.ini [cycles] [threads] [sync]
 *
 * With no arguments a built-in demo config is used. The [sim] section
 * of the config selects the engine parameters (threads, horizon, sync
 * backend — including "adaptive"); the optional positional arguments
 * override it for quick sweeps.
 */
#include <cstdio>
#include <cstdlib>

#include "traffic/system_builder.h"

using namespace hornet;

namespace {

const char *kDemoConfig = R"(
# demo: transpose on an 8x8 mesh with O1TURN and EDVCA
[topology]
kind = mesh
width = 8
height = 8

[network]
vcs = 4
vc_capacity = 4
vca = edvca

[routing]
scheme = o1turn

[traffic]
kind = synthetic
pattern = transpose
rate = 0.08
packet_size = 8

[sim]
seed = 42
)";

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = argc > 1 ? Config::from_file(argv[1])
                          : Config::from_string(kDemoConfig);

    sim::RunOptions opts = traffic::run_options_from_config(cfg);
    if (argc > 2)
        opts.max_cycles = std::strtoull(argv[2], nullptr, 0);
    else if (!cfg.has("sim.max_cycles"))
        opts.max_cycles = 20000;
    if (argc > 3)
        opts.threads = static_cast<unsigned>(std::atoi(argv[3]));
    if (argc > 4) {
        // A positional sync period overrides the whole [sim] sync
        // selection, including adaptive's implied batched handoff —
        // the sweep must be comparable to a sync_period-only config.
        opts.sync_period =
            static_cast<std::uint32_t>(std::atoi(argv[4]));
        opts.sync.clear();
        opts.batch_handoff = false;
    }

    auto sys = traffic::build_system(cfg);
    const std::string sync_desc =
        opts.sync.empty()
            ? "period " + std::to_string(opts.sync_period)
            : opts.sync;
    std::printf("config_run: %u nodes, %llu cycles, %u thread(s), "
                "sync %s\n",
                sys->num_tiles(),
                static_cast<unsigned long long>(opts.max_cycles),
                opts.threads, sync_desc.c_str());

    sys->run(opts);

    auto stats = sys->collect_stats();
    std::printf("%s\n", stats.summary().c_str());
    std::printf("offered load served: %llu packets, p90 latency %.1f "
                "cycles\n",
                static_cast<unsigned long long>(
                    stats.total.packets_delivered),
                stats.total.packet_latency_hist.percentile(0.9));
    return 0;
}
