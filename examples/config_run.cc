/**
 * @file
 * Config-driven runner: describe an entire experiment in an INI file
 * (topology, router parameters, routing scheme, traffic) and run it —
 * no recompilation, exactly the "highly configurable" workflow the
 * paper advertises.
 *
 *   $ ./examples/config_run experiment.ini [cycles] [threads] [sync]
 *
 * With no arguments a built-in demo config is used.
 */
#include <cstdio>
#include <cstdlib>

#include "traffic/system_builder.h"

using namespace hornet;

namespace {

const char *kDemoConfig = R"(
# demo: transpose on an 8x8 mesh with O1TURN and EDVCA
[topology]
kind = mesh
width = 8
height = 8

[network]
vcs = 4
vc_capacity = 4
vca = edvca

[routing]
scheme = o1turn

[traffic]
kind = synthetic
pattern = transpose
rate = 0.08
packet_size = 8

[sim]
seed = 42
)";

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = argc > 1 ? Config::from_file(argv[1])
                          : Config::from_string(kDemoConfig);
    const Cycle cycles =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 20000;
    const unsigned threads =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 1;
    const std::uint32_t sync =
        argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4])) : 1;

    auto sys = traffic::build_system(cfg);
    std::printf("config_run: %u nodes, %llu cycles, %u thread(s), "
                "sync period %u\n",
                sys->num_tiles(),
                static_cast<unsigned long long>(cycles), threads, sync);

    sim::RunOptions opts;
    opts.max_cycles = cycles;
    opts.threads = threads;
    opts.sync_period = sync;
    sys->run(opts);

    auto stats = sys->collect_stats();
    std::printf("%s\n", stats.summary().c_str());
    std::printf("offered load served: %llu packets, p90 latency %.1f "
                "cycles\n",
                static_cast<unsigned long long>(
                    stats.total.packets_delivered),
                stats.total.packet_latency_hist.percentile(0.9));
    return 0;
}
