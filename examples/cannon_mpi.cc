/**
 * @file
 * Domain example: Cannon's distributed matrix multiplication running
 * as MIPS machine code on a 3x3 mesh of simulated cores, using the
 * network system-call interface (MPI-style message passing with DMA,
 * paper II-D2). Verifies the result checksum against a host-computed
 * reference and reports per-core execution statistics.
 */
#include <cstdio>

#include "mips/core.h"
#include "workloads/programs.h"

using namespace hornet;

int
main()
{
    const std::uint32_t grid = 3, block = 4;
    mips::MipsMachineConfig cfg;
    cfg.program = workloads::cannon_program(grid, block);
    cfg.mem.mc_nodes = {0};

    mips::MipsMachine m(net::Topology::mesh2d(grid, grid), cfg);
    Cycle end = m.run_until_done(20000000);

    std::printf("cannon %ux%u cores, %ux%u blocks (matrix %ux%u)\n",
                grid, grid, block, block, grid * block, grid * block);
    std::printf("finished at cycle %llu, all halted: %s\n",
                static_cast<unsigned long long>(end),
                m.all_halted() ? "yes" : "no");

    const std::uint32_t expected =
        workloads::cannon_expected_checksum(grid, block);
    const auto &out = m.core(0).output();
    std::printf("checksum: got %u, expected %u -> %s\n",
                out.empty() ? 0u : static_cast<std::uint32_t>(out[0]),
                expected,
                (!out.empty() &&
                 static_cast<std::uint32_t>(out[0]) == expected)
                    ? "OK"
                    : "MISMATCH");

    std::printf("core,instructions,sends,recvs,mem_stall,recv_stall\n");
    for (NodeId n = 0; n < m.num_cores(); ++n) {
        const auto &s = m.core(n).stats();
        std::printf("%u,%llu,%llu,%llu,%llu,%llu\n", n,
                    static_cast<unsigned long long>(s.instructions),
                    static_cast<unsigned long long>(s.sends),
                    static_cast<unsigned long long>(s.receives),
                    static_cast<unsigned long long>(s.mem_stall_cycles),
                    static_cast<unsigned long long>(s.recv_stall_cycles));
    }
    return 0;
}
