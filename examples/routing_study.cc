/**
 * @file
 * Domain example: compare oblivious routing algorithms (XY, O1TURN,
 * ROMM, Valiant) under transpose traffic — the adversarial pattern
 * for dimension-ordered routing — across offered loads, printing the
 * latency-vs-load curve for each.
 */
#include <cstdio>

#include "net/routing/builders.h"
#include "net/topology.h"
#include "net/vca_builders.h"
#include "sim/system.h"
#include "traffic/flows.h"
#include "traffic/synthetic.h"

using namespace hornet;

namespace {

double
run_one(const std::string &scheme, double rate)
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    net::NetworkConfig cfg;
    cfg.router.net_vcs = 4;
    sim::System sys(topo, cfg, 3);

    auto pattern = traffic::transpose(topo.num_nodes());
    auto flows = traffic::flows_for_pattern(topo.num_nodes(), pattern);
    if (scheme == "xy") {
        net::routing::build_xy(sys.network(), flows);
    } else if (scheme == "o1turn") {
        net::routing::build_o1turn(sys.network(), flows);
        net::vca::build_phase_split(sys.network());
    } else if (scheme == "romm") {
        net::routing::build_romm(sys.network(), flows);
        net::vca::build_phase_split(sys.network());
    } else {
        net::routing::build_valiant(sys.network(), flows);
        net::vca::build_phase_split(sys.network());
    }

    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        traffic::SyntheticConfig sc;
        sc.pattern = pattern;
        sc.packet_size = 8;
        sc.rate = rate;
        sys.add_frontend(n, std::make_unique<traffic::SyntheticInjector>(
                                sys.tile(n), sc));
    }
    sim::RunOptions opts;
    opts.max_cycles = 3000; // warmup
    sys.run(opts);
    sys.reset_stats();
    opts.max_cycles = 18000;
    sys.run(opts);
    return sys.collect_stats().avg_packet_latency();
}

} // namespace

int
main()
{
    std::printf("# transpose on 8x8: avg packet latency by routing "
                "scheme and offered load\n");
    std::printf("rate,xy,o1turn,romm,valiant\n");
    for (double rate : {0.02, 0.05, 0.10, 0.15}) {
        std::printf("%.2f", rate);
        for (const char *s : {"xy", "o1turn", "romm", "valiant"})
            std::printf(",%.1f", run_one(s, rate));
        std::printf("\n");
    }
    std::printf("# transpose concentrates XY traffic on the diagonal; "
                "path-diverse schemes degrade more gracefully\n");
    return 0;
}
