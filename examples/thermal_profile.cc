/**
 * @file
 * Domain example: power and thermal profiling of an 8x8 NoC running a
 * RADIX-like workload — per-tile router power from the ORION-like
 * model feeding the HOTSPOT-like RC thermal solver, printed as a
 * steady-state temperature map with the hotspot highlighted
 * (paper II-B / IV-E).
 */
#include <algorithm>
#include <cstdio>

#include "net/routing/builders.h"
#include "net/topology.h"
#include "power/power_model.h"
#include "sim/system.h"
#include "thermal/thermal_model.h"
#include "traffic/trace.h"
#include "workloads/splash.h"

using namespace hornet;

int
main()
{
    net::Topology topo = net::Topology::mesh2d(8, 8);
    const Cycle duration = 60000;
    auto events = workloads::synthesize_trace(
        workloads::radix_profile(), topo, {0}, duration, 5);

    sim::System sys(topo, {}, 5);
    net::routing::build_xy(sys.network(),
                           traffic::flows_from_trace(events));
    auto per_node =
        traffic::split_trace_by_source(events, topo.num_nodes());
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        if (!per_node[n].empty())
            sys.add_frontend(n, std::make_unique<traffic::TraceInjector>(
                                    sys.tile(n), per_node[n]));
    }
    sim::RunOptions opts;
    opts.max_cycles = duration;
    opts.stop_when_done = true;
    Cycle end = sys.run(opts);
    auto stats = sys.collect_stats();

    // Router power per tile (plus a 3 W core baseline per tile).
    power::PowerConfig pc;
    pc.e_buffer_write_pj *= 60;
    pc.e_buffer_read_pj *= 60;
    pc.e_xbar_per_port_pj *= 60;
    pc.e_link_pj *= 60;
    power::PowerModel pm(net::RouterConfig{}, 5, pc);
    std::vector<double> watts(topo.num_nodes());
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        auto d = power::activity_delta(TileStats{}, stats.per_tile[n]);
        watts[n] = 3.0 + pm.epoch_power_mw(d, end) / 1000.0;
    }

    thermal::ThermalConfig tc;
    tc.g_edge_per_missing_neighbor = 1.0 / tc.r_lateral;
    thermal::ThermalModel tm(topo, tc);
    auto temps = tm.steady_state(watts);
    const std::uint32_t hot = thermal::ThermalModel::hottest(temps);

    std::printf("radix-like on 8x8, %llu cycles; router power + 3 W "
                "core baseline per tile\n",
                static_cast<unsigned long long>(end));
    std::printf("steady-state temperature map (deg C), hotspot at "
                "(%u,%u):\n",
                topo.x_of(hot), topo.y_of(hot));
    for (std::uint32_t y = 0; y < 8; ++y) {
        for (std::uint32_t x = 0; x < 8; ++x) {
            NodeId n = topo.node_at(x, y);
            std::printf("%6.2f%c", temps[n], n == hot ? '*' : ' ');
        }
        std::printf("\n");
    }
    std::printf("min %.2f C, max %.2f C\n",
                *std::min_element(temps.begin(), temps.end()),
                *std::max_element(temps.begin(), temps.end()));
    return 0;
}
