/**
 * @file
 * Memory-footprint study for giant meshes (docs/BENCHMARKS.md, "Giant
 * meshes: the arena-backed layout"): whole-process heap growth and
 * wall time across System construction at 16x16 / 32x32 / 64x64,
 * followed by a short run, plus the arena-internal view from
 * SystemStats. This is the harness behind the before/after table —
 * run it on the pre-arena tree and on this one to reproduce it.
 *
 * The heap numbers come from mallinfo2 (glibc); on other platforms
 * the harness still runs but reports zero heap growth.
 */
#include <chrono>
#include <cstdio>
#include <memory>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "net/routing/builders.h"
#include "net/topology.h"
#include "sim/system.h"
#include "traffic/flows.h"
#include "traffic/patterns.h"
#include "traffic/synthetic.h"

using namespace hornet;

namespace {

/** Current malloc'd bytes (main arena + mmapped blocks); 0 when the
 *  platform offers no mallinfo2. */
std::size_t
heap_bytes()
{
#if defined(__GLIBC__)
    struct mallinfo2 mi = mallinfo2();
    return mi.uordblks + mi.hblkhd;
#else
    return 0;
#endif
}

} // namespace

int
main()
{
    for (std::uint32_t side : {16u, 32u, 64u}) {
        const std::size_t before = heap_bytes();
        auto t0 = std::chrono::steady_clock::now();
        net::Topology topo = net::Topology::mesh2d(side, side);
        auto sys = std::make_unique<sim::System>(
            topo, net::NetworkConfig{}, /*seed=*/17);
        // Shuffle keeps the flow tables O(N); all-pairs would make
        // flow-table construction, not the mesh, the thing measured.
        auto pattern =
            traffic::pattern_by_name("shuffle", topo.num_nodes());
        auto flows =
            traffic::flows_for_pattern(topo.num_nodes(), pattern);
        net::routing::build_xy(sys->network(), flows);
        for (NodeId n = 0; n < topo.num_nodes(); ++n) {
            traffic::SyntheticConfig sc;
            sc.pattern = pattern;
            sc.packet_size = 8;
            sc.rate = 0.02;
            sys->add_frontend(
                n, std::make_unique<traffic::SyntheticInjector>(
                       sys->tile(n), sc));
        }
        auto t1 = std::chrono::steady_clock::now();
        const std::size_t after = heap_bytes();
        const double ctor_s =
            std::chrono::duration<double>(t1 - t0).count();
        const std::size_t n = topo.num_nodes();
        std::printf(
            "%ux%u: ctor %.3f s, heap %.1f MiB, %.0f bytes/tile\n",
            side, side, ctor_s, (after - before) / 1048576.0,
            static_cast<double>(after - before) / n);

        // Short run to confirm it simulates, and time 200 cycles.
        auto r0 = std::chrono::steady_clock::now();
        sim::RunOptions ro;
        ro.max_cycles = 200;
        sys->run(ro);
        auto r1 = std::chrono::steady_clock::now();
        const SystemStats stats = sys->collect_stats();
        std::printf("  200 cycles: %.3f s, delivered %llu\n",
                    std::chrono::duration<double>(r1 - r0).count(),
                    static_cast<unsigned long long>(
                        stats.total.flits_delivered));
        // The arena-internal view: only the simulated hardware
        // (tiles/routers/links/VC buffers), no routing tables or
        // frontends. Zero on a pre-arena tree.
        if (stats.arena_bytes_used != 0)
            std::printf("  arena: %.0f bytes/tile (%llu used, "
                        "%llu reserved, %zu groups)\n",
                        stats.arena_bytes_per_tile,
                        static_cast<unsigned long long>(
                            stats.arena_bytes_used),
                        static_cast<unsigned long long>(
                            stats.arena_bytes_reserved),
                        stats.arena_per_group.size());
    }
    return 0;
}
